"""Session durability: snapshot files, the store, and the reaper.

The paper's smart drill-down is a *stateful* operator — the displayed
rule tree **U** (§2.3) *is* the user's exploration.  A serving tier
that loses every tree on restart forces each tenant to re-click (and
the engine to re-mine) their way back; this module makes the tree
durable server state instead:

* a **versioned JSON-lines snapshot format** (:data:`SNAPSHOT_VERSION`)
  carrying the tree, the expansion history, the ``wf``/``k``/``mw``/
  ``measure`` configuration, the tenant, and recency metadata —
  deliberately *not* search contexts, which are rebuilt (or re-leased
  from the :class:`~repro.serving.ContextStore`) on the first expansion
  after restore, with bit-identical results either way;
* a :class:`SnapshotStore` — one file per session in a flat directory,
  written atomically (temp file + ``os.replace``), with corrupt and
  stale-version files *skipped and counted*, never fatal;
* a :class:`ReaperThread` — the background loop the ROADMAP queued:
  TTL expiry enforced on a timer instead of piggy-backing on request
  traffic, plus periodic checkpointing of dirty sessions.

The subsystem is wired together by
:class:`~repro.serving.DrillDownServer` (``persist_dir=``,
``checkpoint_interval=``, ``reaper_interval=``); see docs/SERVING.md
§Durability for the operator's view.

**Wire format.**  One ``<session-id>.jsonl`` file per session:

.. code-block:: text

    {"record": "meta", "version": 1, "session_id": ..., "table": ...,
     "tenant": ..., "wf": "size", "k": 3, "mw": 5.0, "measure": null,
     "columns": [...], "expansions": 2, "idle_seconds": 1.5,
     "age_seconds": 40.2, "saved_at": <wall clock>}
    {"record": "expansion", "rule": [...], "kind": "rule", ...}   # 0+
    {"record": "tree", "root": {"rule": [...], "count": ..., ...}}

The ``tree`` record is written last and doubles as the completeness
terminator: a torn or truncated file has no tree and is skipped as
corrupt.  Rule values are tagged arrays (``["*"]`` for the wildcard,
``["s", "Walmart"]``, ``["i", 3]``, ``["f", 1.5]``, ``["b", true]``,
``["n"]`` for a literal ``None`` value, ``["iv", lo, hi, closed]`` for
bucketized :class:`~repro.table.bucketize.Interval`\\ s) so every
value type a rule can hold round-trips exactly; counts and weights
round-trip bit-exactly through JSON's ``repr``-based float encoding.

Recency is persisted as *idle seconds* plus a wall-clock ``saved_at``
(monotonic clocks do not survive a restart): on restore the idle age
becomes ``idle_seconds`` plus the measured downtime, so a session that
out-sleeps the TTL across a restart is reaped, not resurrected fresh.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.core.rule import STAR, Rule, Wildcard
from repro.errors import SnapshotError
from repro.table.bucketize import Interval

__all__ = [
    "SNAPSHOT_VERSION",
    "ReaperThread",
    "SessionSnapshot",
    "SnapshotStore",
    "decode_rule",
    "encode_rule",
]

#: Version stamped into every snapshot's meta record.  Readers skip
#: (and count) any other version — old snapshots after a format change
#: are stale data, not a crash.
SNAPSHOT_VERSION = 1

_SNAPSHOT_SUFFIX = ".jsonl"

#: Session ids become file names; anything outside this alphabet is
#: refused rather than escaped (ids are registry-generated anyway).
_SAFE_ID = re.compile(r"[A-Za-z0-9._-]+")


# -- value / rule encoding -------------------------------------------------------


def _encode_value(value: Any) -> list:
    """One rule value as a tagged JSON array (see module docstring)."""
    if isinstance(value, Wildcard):
        return ["*"]
    if value is None:
        return ["n"]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, int):
        return ["i", int(value)]
    if isinstance(value, float):
        return ["f", float(value)]
    if isinstance(value, Interval):
        return ["iv", value.lo, value.hi, value.closed_right]
    # Dictionary-encoded columns can surface numpy scalars; map them to
    # their Python equivalents (equality and hashing agree, so decoded
    # rules still match the table's values).
    item = getattr(value, "item", None)
    if callable(item):
        return _encode_value(item())
    raise SnapshotError(
        f"rule value {value!r} ({type(value).__name__}) is not snapshot-serialisable"
    )


def _decode_value(encoded: Any) -> Any:
    if not isinstance(encoded, list) or not encoded:
        raise SnapshotError(f"malformed encoded rule value: {encoded!r}")
    tag = encoded[0]
    if tag == "*":
        return STAR
    if tag == "n":
        return None
    if tag in ("s", "b"):
        return encoded[1]
    if tag == "i":
        return int(encoded[1])
    if tag == "f":
        return float(encoded[1])
    if tag == "iv":
        return Interval(float(encoded[1]), float(encoded[2]), bool(encoded[3]))
    raise SnapshotError(f"unknown rule-value tag {tag!r}")


def encode_rule(rule: Rule) -> list:
    """A rule as one tagged JSON array per column."""
    return [_encode_value(v) for v in rule]


def decode_rule(encoded: Any) -> Rule:
    """Invert :func:`encode_rule`."""
    if not isinstance(encoded, list):
        raise SnapshotError(f"malformed encoded rule: {encoded!r}")
    return Rule([_decode_value(v) for v in encoded])


def _encode_node(node_state: dict) -> dict:
    # "estimate" (approximate-expansion metadata) is written only when
    # the node state carries one, keeping exact snapshots byte-stable
    # across the approx feature's introduction.
    encoded = {
        "rule": encode_rule(node_state["rule"]),
        "count": node_state["count"],
        "weight": node_state["weight"],
        "depth": node_state["depth"],
        "expanded_via": node_state["expanded_via"],
        "children": [_encode_node(c) for c in node_state["children"]],
    }
    if node_state.get("estimate") is not None:
        encoded["estimate"] = node_state["estimate"]
    return encoded


def _decode_node(encoded: dict) -> dict:
    decoded = {
        "rule": decode_rule(encoded["rule"]),
        "count": float(encoded["count"]),
        "weight": float(encoded["weight"]),
        "depth": int(encoded["depth"]),
        "expanded_via": encoded.get("expanded_via"),
        "children": [_decode_node(c) for c in encoded.get("children", ())],
    }
    estimate = encoded.get("estimate")
    if estimate is not None:
        decoded["estimate"] = dict(estimate)
    return decoded


def _encode_record(record_state: dict) -> dict:
    out = dict(record_state)
    out["rule"] = encode_rule(record_state["rule"])
    out["record"] = "expansion"
    return out


def _decode_record(encoded: dict) -> dict:
    out = {key: value for key, value in encoded.items() if key != "record"}
    out["rule"] = decode_rule(encoded["rule"])
    return out


# -- the snapshot ----------------------------------------------------------------


@dataclass
class SessionSnapshot:
    """One session's durable state, ready to write or just read.

    ``state`` is exactly what
    :meth:`~repro.session.DrillDownSession.snapshot` returned (rules
    are live :class:`~repro.core.rule.Rule` objects; encoding happens
    at the file boundary).  The remaining fields are the serving-tier
    envelope: identity, configuration name, and recency.
    """

    session_id: str
    table: str
    tenant: str
    wf_spec: str
    state: dict
    expansions: int = 0
    #: Catalog version of ``table`` the session was pinned to when
    #: snapshotted — *provenance*, not an address: restore always pins
    #: the freshly registered table (the snapshot stores no rows), so a
    #: version from a previous run need not exist anymore.
    table_version: int | None = None
    #: Idle/age seconds *at snapshot time*; restore adds measured
    #: downtime (wall clock) on top.
    idle_seconds: float = 0.0
    age_seconds: float = 0.0
    saved_at: float = field(default_factory=time.time)


# -- the store -------------------------------------------------------------------


class SnapshotStore:
    """Directory of per-session snapshot files with atomic replacement.

    Layout: ``<root>/<session-id>.jsonl``, one file per session,
    written to a temporary sibling and ``os.replace``\\ d into place so
    a crash mid-checkpoint leaves the previous snapshot intact (never a
    torn file under the real name).  Loading skips — and counts —
    undecodable files (``skipped_corrupt``) and version mismatches
    (``skipped_version``); a bad snapshot can cost one session's
    restore, never the warm restart.

    ``max_bytes`` caps the directory's total snapshot footprint for
    very long-lived tiers: every save that pushes the total past the
    cap evicts whole snapshots, oldest recency (file mtime — the last
    checkpoint touch) first, until the directory fits again.  The file
    just written is never its own eviction victim, so the cap degrades
    to "keep only the most recent session" rather than thrashing.
    Evictions are counted (``cap_evictions``), not fatal — an evicted
    session simply will not warm-restore.

    Leftover ``*.tmp-*`` files from a crash *mid-write* (the in-process
    failure path unlinks its own temp file, but a SIGKILL or power loss
    cannot) are swept on construction and counted in ``cleaned_tmp``;
    they are garbage by definition — the publish rename never happened.
    """

    def __init__(self, root: str | os.PathLike, *, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise SnapshotError("max_bytes must be a positive byte count or None")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self.saved = 0
        self.deleted = 0
        self.skipped_corrupt = 0
        self.skipped_version = 0
        self.cap_evictions = 0
        self.cleaned_tmp = 0
        for leftover in self.root.glob(f"*{_SNAPSHOT_SUFFIX}.tmp-*"):
            try:
                leftover.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                continue
            self.cleaned_tmp += 1
        # Running footprint (file name -> bytes), kept in step by
        # save/delete so the cap check is O(1) while under the cap; the
        # eviction pass re-scans the directory authoritatively.
        self._sizes: dict[str, int] = {}
        self._size_total = 0
        for path in self.root.glob(f"*{_SNAPSHOT_SUFFIX}"):
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - racing delete
                continue
            self._sizes[path.name] = size
            self._size_total += size

    # -- paths -------------------------------------------------------------------

    def _path(self, session_id: str) -> Path:
        if not _SAFE_ID.fullmatch(session_id):
            raise SnapshotError(f"unsafe session id for a file name: {session_id!r}")
        return self.root / f"{session_id}{_SNAPSHOT_SUFFIX}"

    def session_ids(self) -> tuple[str, ...]:
        """Ids with a snapshot on disk (sorted; no decoding)."""
        return tuple(
            sorted(p.name[: -len(_SNAPSHOT_SUFFIX)] for p in self.root.glob(f"*{_SNAPSHOT_SUFFIX}"))
        )

    def __len__(self) -> int:
        return len(self.session_ids())

    def __contains__(self, session_id: object) -> bool:
        return isinstance(session_id, str) and session_id in self.session_ids()

    # -- write / delete ----------------------------------------------------------

    def save(self, snapshot: SessionSnapshot) -> Path:
        """Write ``snapshot`` atomically; returns the final path.

        Raises :class:`~repro.errors.SnapshotError` when the state is
        not representable (e.g. an exotic rule-value type).
        """
        path = self._path(snapshot.session_id)
        state = snapshot.state
        meta = {
            "record": "meta",
            "version": SNAPSHOT_VERSION,
            "session_id": snapshot.session_id,
            "table": snapshot.table,
            "tenant": snapshot.tenant,
            "wf": snapshot.wf_spec,
            "k": state["k"],
            "mw": state["mw"],
            "measure": state["measure"],
            "columns": list(state["columns"]),
            "expansions": snapshot.expansions,
            "table_version": snapshot.table_version,
            "idle_seconds": snapshot.idle_seconds,
            "age_seconds": snapshot.age_seconds,
            "saved_at": snapshot.saved_at,
        }
        lines = [json.dumps(meta)]
        lines.extend(json.dumps(_encode_record(r)) for r in state["history"])
        lines.append(json.dumps({"record": "tree", "root": _encode_node(state["tree"])}))
        payload = "\n".join(lines) + "\n"
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            with open(tmp, "w") as handle:
                handle.write(payload)
                handle.flush()
                # The atomicity promise ("a crash leaves the previous
                # snapshot intact") needs the data on disk *before* the
                # rename, or power loss can publish an empty file under
                # the real name.
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()  # never leak .tmp files on a failed write
            except OSError:
                pass
            raise
        try:  # make the rename itself durable (best effort)
            dir_fd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        try:
            size = path.stat().st_size
        except OSError:  # pragma: no cover - racing delete
            size = len(payload.encode("utf-8"))
        with self._lock:
            self.saved += 1
            self._size_total += size - self._sizes.get(path.name, 0)
            self._sizes[path.name] = size
            over_cap = self.max_bytes is not None and self._size_total > self.max_bytes
        if over_cap:
            self._enforce_cap(keep=path)
        return path

    def _enforce_cap(self, *, keep: Path) -> None:
        """Evict oldest-recency snapshots until the directory fits
        ``max_bytes`` again.  ``keep`` (the file just published) is
        exempt — evicting your own write would make the cap a black
        hole.  Re-scans the directory (the running total is only the
        trigger), so races with concurrent deletes are benign: a
        vanished victim already freed its bytes."""
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        sizes: dict[str, int] = {}
        for path in self.root.glob(f"*{_SNAPSHOT_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, path.name, path, stat.st_size))
            total += stat.st_size
            sizes[path.name] = stat.st_size
        entries.sort()  # oldest mtime first; name tie-break for determinism
        for _mtime, name, path, size in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            sizes.pop(name, None)
            with self._lock:
                self.cap_evictions += 1
        with self._lock:
            self._sizes = sizes
            self._size_total = total

    def total_bytes(self) -> int:
        """Current on-disk footprint of all snapshot files."""
        total = 0
        for path in self.root.glob(f"*{_SNAPSHOT_SUFFIX}"):
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - racing delete
                continue
        return total

    def delete(self, session_id: str) -> bool:
        """Remove one session's snapshot (orphan cleanup on close)."""
        try:
            path = self._path(session_id)
        except SnapshotError:
            return False
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        with self._lock:
            self.deleted += 1
            self._size_total -= self._sizes.pop(path.name, 0)
        return True

    # -- read --------------------------------------------------------------------

    def load(self, session_id: str) -> SessionSnapshot:
        """Decode one snapshot; raises :class:`SnapshotError` on any defect."""
        return self._decode(self._path(session_id))

    def load_all(self) -> list[SessionSnapshot]:
        """Every decodable current-version snapshot, least-recent first.

        Undecodable files bump ``skipped_corrupt``; decodable files
        with a different :data:`SNAPSHOT_VERSION` bump
        ``skipped_version``.  Neither raises — restart must not be
        blockable by one bad file.  The least-recent-first order lets
        the caller admit sessions in faithful LRU order.
        """
        snapshots = []
        for session_id in self.session_ids():
            try:
                snapshots.append(self.load(session_id))
            except _StaleVersion:
                with self._lock:
                    self.skipped_version += 1
            except Exception:
                with self._lock:
                    self.skipped_corrupt += 1
        snapshots.sort(key=lambda s: s.saved_at - s.idle_seconds)
        return snapshots

    def _decode(self, path: Path) -> SessionSnapshot:
        lines = [line for line in path.read_text().splitlines() if line.strip()]
        if not lines:
            raise SnapshotError(f"empty snapshot file {path.name}")
        records = [json.loads(line) for line in lines]
        meta, body = records[0], records[1:]
        if meta.get("record") != "meta":
            raise SnapshotError(f"{path.name}: first record is not the meta header")
        if meta.get("version") != SNAPSHOT_VERSION:
            raise _StaleVersion(
                f"{path.name}: snapshot version {meta.get('version')!r}, "
                f"reader speaks {SNAPSHOT_VERSION}"
            )
        if not body or body[-1].get("record") != "tree":
            raise SnapshotError(f"{path.name}: truncated snapshot (no tree terminator)")
        history = [_decode_record(r) for r in body[:-1] if r.get("record") == "expansion"]
        if len(history) != len(body) - 1:
            raise SnapshotError(f"{path.name}: unrecognised record kind in body")
        state = {
            "k": int(meta["k"]),
            "mw": float(meta["mw"]),
            "measure": meta["measure"],
            "tenant": meta["tenant"],
            "columns": list(meta["columns"]),
            "tree": _decode_node(body[-1]["root"]),
            "history": history,
        }
        return SessionSnapshot(
            session_id=str(meta["session_id"]),
            table=str(meta["table"]),
            tenant=str(meta["tenant"]),
            wf_spec=str(meta["wf"]),
            state=state,
            expansions=int(meta.get("expansions", 0)),
            table_version=(
                None
                if meta.get("table_version") is None
                else int(meta["table_version"])
            ),
            idle_seconds=float(meta.get("idle_seconds", 0.0)),
            age_seconds=float(meta.get("age_seconds", 0.0)),
            saved_at=float(meta.get("saved_at", 0.0)),
        )

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "dir": str(self.root),
                "snapshots": len(self),
                "saved": self.saved,
                "deleted": self.deleted,
                "skipped_corrupt": self.skipped_corrupt,
                "skipped_version": self.skipped_version,
                "max_bytes": self.max_bytes,
                "total_bytes": self.total_bytes(),
                "cap_evictions": self.cap_evictions,
                "cleaned_tmp": self.cleaned_tmp,
            }

    def __repr__(self) -> str:
        return f"SnapshotStore({str(self.root)!r}, snapshots={len(self)})"


class _StaleVersion(SnapshotError):
    """Internal: a decodable snapshot written by another format version."""


# -- the reaper ------------------------------------------------------------------


class ReaperThread(threading.Thread):
    """Background TTL enforcement + periodic checkpointing.

    Before this thread existed, idle sessions were only expired when
    some other request happened to touch the registry — an abandoned
    tier kept every session (and its retained contexts) alive forever.
    The reaper calls ``reap`` (typically
    :meth:`SessionRegistry.evict_expired`) every ``interval`` seconds
    and ``checkpoint`` (typically
    :meth:`DrillDownServer.checkpoint_all`, a dirty-sessions-only
    sweep) every ``checkpoint_interval`` seconds, entirely independent
    of request traffic.

    Both callbacks are exception-isolated: a failing checkpoint (say,
    a full disk) is counted in :attr:`errors` and the loop keeps
    running — a reaper that dies silently is worse than no reaper.
    :meth:`run_once` drives one tick synchronously for deterministic
    tests; :meth:`stop` shuts the thread down promptly (it is also a
    daemon, so it never blocks interpreter exit).

    :class:`~repro.serving.faults.ShardWatchdog` follows the same
    shape (daemon loop, exception isolation, ``run_once``/``stop``)
    one level up: it sweeps shard *processes* for wedge/crash where
    this thread sweeps *sessions* for expiry.
    """

    def __init__(
        self,
        *,
        reap: Callable[[], Any],
        checkpoint: Callable[[], Any] | None = None,
        interval: float = 30.0,
        checkpoint_interval: float | None = None,
        name: str = "drilldown-reaper",
    ):
        super().__init__(name=name, daemon=True)
        if interval <= 0:
            raise SnapshotError("reaper interval must be > 0 seconds")
        self._reap = reap
        self._checkpoint = checkpoint
        self.interval = float(interval)
        self.checkpoint_interval = float(
            interval if checkpoint_interval is None else checkpoint_interval
        )
        if self.checkpoint_interval <= 0:
            raise SnapshotError("checkpoint interval must be > 0 seconds")
        self._stop_event = threading.Event()
        self.ticks = 0
        self.reaped = 0
        self.checkpointed = 0
        self.errors = 0

    def run(self) -> None:  # pragma: no cover - timing loop; run_once is tested
        # The two duties keep independent due times: a
        # checkpoint_interval shorter than the reap interval (the
        # durability-first configuration) must fire at its own cadence,
        # not once per reap tick.
        # repro-lint: allow[clock-discipline] reason=the reaper thread waits real time by design; run_once is the injectable-tested seam
        reap_due = time.monotonic() + self.interval
        # repro-lint: allow[clock-discipline] reason=the reaper thread waits real time by design; run_once is the injectable-tested seam
        checkpoint_due = time.monotonic() + self.checkpoint_interval
        while True:
            # repro-lint: allow[clock-discipline] reason=the reaper thread waits real time by design; run_once is the injectable-tested seam
            wait = min(reap_due, checkpoint_due) - time.monotonic()
            if self._stop_event.wait(max(0.0, wait)):
                return
            # repro-lint: allow[clock-discipline] reason=the reaper thread waits real time by design; run_once is the injectable-tested seam
            now = time.monotonic()
            do_reap = now >= reap_due
            do_checkpoint = now >= checkpoint_due
            self.run_once(reap=do_reap, checkpoint=do_checkpoint)
            if do_reap:
                # repro-lint: allow[clock-discipline] reason=the reaper thread waits real time by design; run_once is the injectable-tested seam
                reap_due = time.monotonic() + self.interval
            if do_checkpoint:
                # repro-lint: allow[clock-discipline] reason=the reaper thread waits real time by design; run_once is the injectable-tested seam
                checkpoint_due = time.monotonic() + self.checkpoint_interval

    def run_once(self, *, reap: bool = True, checkpoint: bool = True) -> None:
        """One reaper tick, synchronously (the thread's body; also tests)."""
        self.ticks += 1
        if reap:
            try:
                reaped = self._reap()
                self.reaped += len(reaped) if reaped is not None else 0
            except Exception:
                self.errors += 1
        if checkpoint and self._checkpoint is not None:
            try:
                done = self._checkpoint()
                self.checkpointed += int(done) if done is not None else 0
            except Exception:
                self.errors += 1

    def stop(self, *, timeout: float | None = 5.0) -> None:
        """Signal the loop to exit and join it (no-op if never started)."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)

    def stats(self) -> dict:
        return {
            "alive": self.is_alive(),
            "interval": self.interval,
            "checkpoint_interval": self.checkpoint_interval,
            "ticks": self.ticks,
            "reaped": self.reaped,
            "checkpointed": self.checkpointed,
            "errors": self.errors,
        }
