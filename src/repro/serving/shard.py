"""The shard worker: one full serving tier in a child process.

A sharded deployment (:mod:`repro.serving.router`) runs N worker
processes, each hosting its own complete
:class:`~repro.serving.DrillDownServer` — catalog, registry, context
store, scheduler, counting pool, and (optionally) snapshot store +
reaper.  This module is everything that runs *inside* one such worker
and the protocol both sides speak:

* **Framing** — length-prefixed JSON over a duplex
  :func:`multiprocessing.Pipe` (``send_bytes``/``recv_bytes`` is
  exactly a length prefix followed by the payload).  One request, one
  response, matched by ``id``; the router serialises requests per
  shard, so the pipe never interleaves frames.
* **Value encoding** — rules travel as the snapshot format's tagged
  value arrays (:func:`~repro.serving.persistence.encode_rule`), so
  every value a rule can hold — strings, ints, floats, ``None``,
  bucketized intervals — round-trips exactly; counts and weights
  round-trip bit-exactly through JSON's ``repr``-based float encoding.
  Tables cross the pipe once, at registration, as dictionary +
  codes per categorical column (the dictionary *order* is preserved,
  so the decoded table's integer codes — and therefore every mining
  tie-break — are identical to the original's).
* **Error encoding** — a typed :class:`~repro.errors.ReproError`
  raised by the shard's server is sent back by class name and
  re-raised *as itself* on the router side, so the HTTP error mapping
  (404/409/429/400) is oblivious to sharding.  Unknown classes and
  infrastructure failures surface as
  :class:`~repro.errors.ShardError` (HTTP 503).
* **The loop** — :func:`shard_main`: construct the server, answer
  requests until ``shutdown`` or EOF, then ``server.close()`` — which
  checkpoints every dirty session when the shard is durable, making a
  clean router shutdown a warm-restartable state.

:class:`ShardProcess` is the router-side handle: it forks (or spawns)
the worker, pins the parent end of the pipe, serialises requests under
a lock, and exposes ``kill()`` for fault-injection tests.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from typing import Any

import numpy as np

from repro import errors as _errors_module
from repro.core.rule import Rule
from repro.errors import ReproError, ShardError, TenantBudgetError
from repro.serving.faults import ChaosPolicy
from repro.serving.persistence import _decode_value, _encode_value, decode_rule, encode_rule
from repro.session.session import SessionNode
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.schema import ColumnKind, ColumnSchema, Schema
from repro.table.table import Table

__all__ = [
    "ShardBusyError",
    "ShardProcess",
    "ShardWedgedError",
    "decode_error",
    "decode_node",
    "decode_table",
    "encode_error",
    "encode_node",
    "encode_table",
    "shard_main",
]


class ShardWedgedError(TimeoutError):
    """The worker missed its reply window: the request was *sent* but
    no response arrived within the deadline.  The handle is condemned
    (a late reply would answer the *next* request — stream out of
    sync), so the router must kill and restart the worker.  A
    ``TimeoutError`` (hence ``OSError``): existing broken-pipe catches
    see it as a pipe failure."""


class ShardBusyError(TimeoutError):
    """The handle lock could not be acquired within the deadline: the
    shard is saturated serving *other* requests, not proven sick.  The
    pipe was never touched — the handle stays usable and the breaker
    is not charged."""


# -- wire encoding: tables -------------------------------------------------------


def encode_table(table: Table) -> dict:
    """A table as JSON: per-column dictionary + codes (categorical) or
    float data (numeric).  Dictionary order is preserved — decoded
    codes are bit-identical, so mining tie-breaks cannot drift."""
    columns = []
    for col_schema in table.schema:
        if col_schema.is_categorical:
            col = table.categorical(col_schema.name)
            columns.append(
                {
                    "kind": "categorical",
                    "name": col_schema.name,
                    "values": [_encode_value(v) for v in col.values],
                    "codes": col.codes.tolist(),
                }
            )
        else:
            col = table.numeric(col_schema.name)
            columns.append(
                {"kind": "numeric", "name": col_schema.name, "data": col.data.tolist()}
            )
    return {"columns": columns, "rows": table.n_rows}


def decode_table(spec: dict) -> Table:
    """Invert :func:`encode_table`."""
    entries: list[ColumnSchema] = []
    columns: list[CategoricalColumn | NumericColumn] = []
    for col in spec["columns"]:
        if col["kind"] == "categorical":
            entries.append(ColumnSchema(col["name"], ColumnKind.CATEGORICAL))
            columns.append(
                CategoricalColumn(
                    np.asarray(col["codes"], dtype=np.int32),
                    [_decode_value(v) for v in col["values"]],
                )
            )
        else:
            entries.append(ColumnSchema(col["name"], ColumnKind.NUMERIC))
            columns.append(NumericColumn(np.asarray(col["data"], dtype=np.float64)))
    return Table(Schema(entries), columns)


# -- wire encoding: displayed nodes ----------------------------------------------


def encode_node(node: SessionNode) -> dict:
    """A displayed node and its whole subtree as JSON (exact floats).

    ``estimate`` (approximate-expansion metadata, already JSON
    primitives) is written only when present, so exact responses keep
    their pre-approx wire bytes.
    """
    payload = {
        "rule": encode_rule(node.rule),
        "count": float(node.count),
        "weight": float(node.weight),
        "depth": int(node.depth),
        "expanded_via": node.expanded_via,
        "children": [encode_node(c) for c in node.children],
    }
    if node.estimate is not None:
        payload["estimate"] = dict(node.estimate)
    return payload


def decode_node(payload: dict) -> SessionNode:
    """Invert :func:`encode_node`."""
    estimate = payload.get("estimate")
    node = SessionNode(
        rule=decode_rule(payload["rule"]),
        count=float(payload["count"]),
        weight=float(payload["weight"]),
        depth=int(payload["depth"]),
        expanded_via=payload.get("expanded_via"),
        estimate=dict(estimate) if estimate is not None else None,
    )
    node.children = [decode_node(c) for c in payload.get("children", ())]
    return node


# -- wire encoding: errors -------------------------------------------------------

#: Exception classes that re-raise as themselves across the pipe: every
#: typed error in :mod:`repro.errors` plus the builtins the HTTP layer
#: maps to 400 (a shard's ``KeyError`` must stay a 400, not become 503).
_ERROR_CLASSES: dict[str, type] = {
    name: obj
    for name, obj in vars(_errors_module).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)
}
_ERROR_CLASSES.update(
    {cls.__name__: cls for cls in (KeyError, IndexError, TypeError, ValueError)}
)


def encode_error(exc: BaseException) -> dict:
    """An exception as a wire payload (class name + message + extras)."""
    payload: dict[str, Any] = {"error": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, TenantBudgetError):
        payload["budget"] = {
            "tenant": exc.tenant if isinstance(exc.tenant, (str, int, float)) else str(exc.tenant),
            "requested": exc.requested,
            "available": exc.available,
            "retry_after": exc.retry_after,
        }
    else:
        # Back-off hints (DeadlineExceededError, CircuitOpenError, ...)
        # survive the pipe so the HTTP layer's Retry-After header is
        # identical with and without sharding.
        retry_after = getattr(exc, "retry_after", None)
        if isinstance(retry_after, (int, float)):
            payload["retry_after"] = float(retry_after)
    return payload


def decode_error(payload: dict, *, shard: int | None = None) -> BaseException:
    """Rebuild the exception a shard reported.

    Known classes come back as themselves (so ``isinstance``-based
    error mapping — and callers catching :class:`SessionError` etc. —
    behave exactly as in-process); anything else becomes a
    :class:`~repro.errors.ShardError`.
    """
    name = payload.get("error", "ShardError")
    message = payload.get("message", "")
    budget = payload.get("budget")
    if name == "TenantBudgetError" and budget is not None:
        return TenantBudgetError(
            budget.get("tenant"),
            float(budget.get("requested", 0.0)),
            float(budget.get("available", 0.0)),
            budget.get("retry_after"),
        )
    cls = _ERROR_CLASSES.get(name)
    if cls is None:
        where = "shard" if shard is None else f"shard {shard}"
        return ShardError(f"{where} failed: {name}: {message}")
    try:
        exc = cls(message)
    except Exception:  # pragma: no cover - exotic constructor
        return ShardError(f"shard error {name}: {message}")
    retry_after = payload.get("retry_after")
    if isinstance(retry_after, (int, float)):
        exc.retry_after = float(retry_after)
    return exc


# -- the worker loop -------------------------------------------------------------


def _maybe_rule(encoded: Any) -> Rule | None:
    return None if encoded is None else decode_rule(encoded)


def _op_ping(server, args: dict) -> dict:
    return {"pid": os.getpid(), "tables": list(server.tables())}


def _op_register_table(server, args: dict) -> dict:
    table = decode_table(args["table"])
    server.register_table(args["name"], table)
    # Report every live session with its table: after a warm restart
    # the router learns the restored ids (and their routing table)
    # from this list.
    return {
        "rows": table.n_rows,
        "columns": list(table.column_names),
        "version": server.catalog.latest_version(args["name"]),
        "sessions": [
            [e.session_id, e.table, e.table_version]
            for e in server.registry.entries()
        ],
    }


def _op_unregister_table(server, args: dict) -> dict:
    server.unregister_table(args["name"])
    return {}


def _op_append_rows(server, args: dict) -> dict:
    # Rows travel as the snapshot format's tagged value arrays, so every
    # value type a cell can hold round-trips exactly (intervals included).
    rows = [[_decode_value(v) for v in row] for row in args["rows"]]
    return server.append_rows(args["name"], rows)


def _op_replace_table(server, args: dict) -> dict:
    return server.replace_table(args["name"], decode_table(args["table"]))


def _op_tables(server, args: dict) -> dict:
    return {"tables": list(server.tables())}


def _op_create_session(server, args: dict) -> dict:
    session_id = server.create_session(
        args["table"],
        tenant=args.get("tenant", "default"),
        wf=args.get("wf", "size"),
        k=args.get("k", 3),
        mw=args.get("mw", 5.0),
        measure=args.get("measure"),
    )
    entry = server.registry.peek(session_id)
    return {
        "session_id": session_id,
        "table_version": None if entry is None else entry.table_version,
    }


def _op_expand(server, args: dict) -> dict:
    children = server.expand(
        args["session_id"],
        _maybe_rule(args.get("rule")),
        k=args.get("k"),
        approx=args.get("approx"),
        error_target=args.get("error_target"),
    )
    return {"children": [encode_node(c) for c in children]}


def _op_expand_star(server, args: dict) -> dict:
    children = server.expand_star(
        args["session_id"],
        decode_rule(args["rule"]),
        args["column"],
        k=args.get("k"),
        approx=args.get("approx"),
        error_target=args.get("error_target"),
    )
    return {"children": [encode_node(c) for c in children]}


def _op_expand_traditional(server, args: dict) -> dict:
    children = server.expand_traditional(
        args["session_id"],
        decode_rule(args["rule"]),
        args["column"],
        k=args.get("k"),
        approx=args.get("approx"),
        error_target=args.get("error_target"),
    )
    return {"children": [encode_node(c) for c in children]}


def _op_collapse(server, args: dict) -> dict:
    server.collapse(args["session_id"], decode_rule(args["rule"]))
    return {}


def _op_render(server, args: dict) -> dict:
    text = server.render(
        args["session_id"],
        sort_display_by_count=bool(args.get("sort_display_by_count", False)),
    )
    return {"text": text}


def _op_tree(server, args: dict) -> dict:
    return {"root": encode_node(server.tree(args["session_id"]))}


def _op_session_columns(server, args: dict) -> dict:
    return {"columns": list(server.session_columns(args["session_id"]))}


def _op_close_session(server, args: dict) -> dict:
    return {"closed": server.close_session(args["session_id"])}


def _op_stats(server, args: dict) -> dict:
    return server.stats()


def _op_checkpoint_all(server, args: dict) -> dict:
    return {"written": server.checkpoint_all(only_dirty=bool(args.get("only_dirty", True)))}


def _op_reap(server, args: dict) -> dict:
    return {"evicted": server.reap()}


_OP_HANDLERS = {
    "ping": _op_ping,
    "register_table": _op_register_table,
    "unregister_table": _op_unregister_table,
    "append_rows": _op_append_rows,
    "replace_table": _op_replace_table,
    "tables": _op_tables,
    "create_session": _op_create_session,
    "expand": _op_expand,
    "expand_star": _op_expand_star,
    "expand_traditional": _op_expand_traditional,
    "collapse": _op_collapse,
    "render": _op_render,
    "tree": _op_tree,
    "session_columns": _op_session_columns,
    "close_session": _op_close_session,
    "stats": _op_stats,
    "checkpoint_all": _op_checkpoint_all,
    "reap": _op_reap,
}


def shard_main(conn, shard_id: int, server_kwargs: dict) -> None:
    """The worker-process entry point: serve one pipe until shutdown.

    Constructs a full :class:`~repro.serving.DrillDownServer` from
    ``server_kwargs`` (which includes the shard's own ``persist_dir``
    and session-id prefix), then answers one request frame at a time.
    Every exception an operation raises is encoded into the response —
    the loop itself only exits on ``shutdown`` or a closed pipe, and
    always closes the server on the way out (checkpointing dirty
    sessions when durable, so even an EOF-terminated shard leaves a
    warm-restartable directory behind).
    """
    # Imported lazily so the module can be loaded by spawn-method
    # pickling before the server's dependency graph is.
    from repro.serving.server import DrillDownServer

    server = DrillDownServer(**server_kwargs)
    chaos: ChaosPolicy | None = None
    try:
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                request = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break  # unframeable garbage: the pipe is unusable
            request_id = request.get("id")
            op = request.get("op")
            if op == "shutdown":
                try:
                    conn.send_bytes(
                        json.dumps({"id": request_id, "ok": True, "result": {}}).encode()
                    )
                except (BrokenPipeError, OSError):  # pragma: no cover - racing close
                    pass
                break
            if op == "chaos":
                # Fault-injection control plane: install (or clear) a
                # ChaosPolicy applied to every *subsequent* op at this,
                # the protocol level — a "wedge" really blocks the
                # worker loop, a "crash" really kills the process.
                try:
                    args = request.get("args") or {}
                    chaos = ChaosPolicy.decode(args) if args.get("rules") else None
                    response = {
                        "id": request_id,
                        "ok": True,
                        "result": {"rules": 0 if chaos is None else len(chaos.rules)},
                    }
                except Exception as exc:
                    response = {"id": request_id, "ok": False, **encode_error(exc)}
                try:
                    conn.send_bytes(json.dumps(response, default=str).encode("utf-8"))
                except (BrokenPipeError, OSError):  # pragma: no cover - racing close
                    break
                continue
            chaos_rule = None if chaos is None else chaos.fire(op)
            handler = _OP_HANDLERS.get(op)
            try:
                if chaos_rule is not None:
                    if chaos_rule.kind == "crash":
                        os._exit(23)
                    if chaos_rule.kind == "wedge":
                        time.sleep(chaos_rule.seconds)
                    if chaos_rule.kind == "error":
                        raise ShardError(f"chaos: injected failure on {op!r}")
                if handler is None:
                    raise ShardError(f"unknown shard op {op!r}")
                response = {
                    "id": request_id,
                    "ok": True,
                    "result": handler(server, request.get("args") or {}),
                }
            except Exception as exc:
                response = {"id": request_id, "ok": False, **encode_error(exc)}
            if chaos_rule is not None:
                if chaos_rule.kind == "delay":
                    time.sleep(chaos_rule.seconds)
                if chaos_rule.kind == "drop_reply":
                    continue  # the op ran; its reply is lost on the floor
            try:
                conn.send_bytes(json.dumps(response, default=str).encode("utf-8"))
            except (BrokenPipeError, OSError):
                break
    finally:
        server.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already gone
            pass


# -- the router-side handle ------------------------------------------------------


def _mp_context(method: str | None = None):
    """The start-method context for shard workers.

    Default: fork where available (cheap, shares the parent's imports —
    safe at router construction, which happens before request threads
    exist), else the platform default.  Pass ``method="spawn"`` for
    respawns triggered *from* a request thread: forking a process that
    is running a threaded HTTP server can capture another thread's held
    locks in the child and hang it; spawn starts clean (pipe ends
    pickle across it)."""
    methods = multiprocessing.get_all_start_methods()
    if method is not None and method in methods:
        return multiprocessing.get_context(method)
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ShardProcess:
    """Router-side handle on one shard worker process.

    Owns the parent end of the pipe and a lock serialising
    request/response pairs; exposes :meth:`request` (typed errors
    re-raised, pipe failures surfaced as ``OSError``/``EOFError`` for
    the router's crash detector), :meth:`stop` (graceful: the worker
    closes its server, checkpointing dirty sessions), and
    :meth:`kill` (SIGKILL, for fault injection).
    """

    def __init__(
        self,
        index: int,
        server_kwargs: dict,
        *,
        start_timeout: float = 60.0,
        start_method: str | None = None,
    ):
        ctx = _mp_context(start_method)
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.index = index
        self.server_kwargs = server_kwargs
        self.process = ctx.Process(
            target=shard_main,
            args=(child_conn, index, server_kwargs),
            name=f"drilldown-shard-{index}",
            daemon=True,
        )
        self.process.start()
        #: Snapshot of the worker's pid — still readable after
        #: :meth:`reap` closes the process record.
        self.pid = self.process.pid
        # The child holds its own copy of this end; keeping ours open
        # would defeat EOF-based crash detection.
        child_conn.close()
        self.conn = parent_conn
        self.lock = threading.Lock()
        self._next_request = 0
        self._reaped = False
        #: Set when a request timed out in-pipe: a late reply would
        #: answer the *next* request, so the handle is unusable and
        #: every further request fails fast with ``BrokenPipeError``
        #: until the router replaces the worker.
        self.condemned = False
        #: ``time.monotonic()`` at which the in-flight request (if any)
        #: entered the pipe — the watchdog's wedge heuristic for
        #: deadline-less traffic.  Plain attribute; racy reads are fine.
        self.busy_since: float | None = None
        # First contact doubles as the startup barrier: a worker whose
        # server constructor raised has already exited, and the recv
        # EOFs instead of hanging.
        try:
            self.request("ping", timeout=start_timeout)
        except (OSError, EOFError) as exc:
            self.reap()
            raise ShardError(f"shard {index} failed to start") from exc

    # -- request/response --------------------------------------------------------

    def request(self, op: str, args: dict | None = None, *, timeout: float | None = None):
        """One request/response round trip; returns the ``result``.

        Raises the shard's typed error when the operation failed and
        ``EOFError``/``OSError`` when the pipe broke (the router's
        signal to declare the shard down).  With ``timeout``, the
        whole round trip — *including* waiting for the handle lock
        behind other threads' requests — is bounded:

        * lock not acquired in time → :class:`ShardBusyError` (the
          shard is saturated, not proven sick; the handle stays
          usable),
        * reply not received in time → :class:`ShardWedgedError`, and
          the handle is **condemned** — a late reply would desync the
          request/response stream, so the worker must be killed and
          replaced (the router's recovery spine does both).
        """
        # repro-lint: allow[clock-discipline] reason=pipe deadlines bound real OS waits (lock timeout, poll); no test seam crosses the process boundary
        deadline_at = None if timeout is None else time.monotonic() + max(0.0, timeout)
        if deadline_at is None:
            self.lock.acquire()
        # repro-lint: allow[clock-discipline] reason=pipe deadlines bound real OS waits (lock timeout, poll); no test seam crosses the process boundary
        elif not self.lock.acquire(timeout=max(0.0, deadline_at - time.monotonic())):
            raise ShardBusyError(
                f"shard {self.index} is saturated: {op!r} could not reach the "
                f"pipe within {timeout}s"
            )
        try:
            if self.condemned:
                raise BrokenPipeError(
                    f"shard {self.index} handle was condemned after an earlier "
                    "missed deadline"
                )
            # repro-lint: allow[clock-discipline] reason=busy_since feeds the watchdog's real-time wedge clock across threads
            self.busy_since = time.monotonic()
            self._next_request += 1
            request_id = self._next_request
            frame = json.dumps(
                {"id": request_id, "op": op, "args": args or {}}, default=str
            ).encode("utf-8")
            self.conn.send_bytes(frame)
            if deadline_at is not None and not self.conn.poll(
                # repro-lint: allow[clock-discipline] reason=pipe deadlines bound real OS waits (lock timeout, poll); no test seam crosses the process boundary
                max(0.0, deadline_at - time.monotonic())
            ):
                self.condemned = True
                raise ShardWedgedError(
                    f"shard {self.index} did not answer {op!r} within {timeout}s"
                )
            raw = self.conn.recv_bytes()
        finally:
            self.busy_since = None
            self.lock.release()
        response = json.loads(raw.decode("utf-8"))
        if response.get("id") != request_id:
            self.condemned = True
            raise EOFError(
                f"shard {self.index} answered request {response.get('id')!r} "
                f"to request {request_id} — stream out of sync"
            )
        if response.get("ok"):
            return response.get("result")
        raise decode_error(response, shard=self.index)

    def install_chaos(self, policy: "ChaosPolicy | None") -> int:
        """Install (``ChaosPolicy``) or clear (``None``) worker-side
        fault injection; returns the number of active rules."""
        payload = {"rules": []} if policy is None else policy.encode()
        result = self.request("chaos", payload)
        return int(result["rules"])

    # -- lifecycle ---------------------------------------------------------------

    def alive(self) -> bool:
        return not self._reaped and self.process.is_alive()

    def stop(self, *, timeout: float = 10.0) -> None:
        """Graceful shutdown: ask, wait, then escalate to terminate.
        A no-op on an already-reaped handle (e.g. a shard that died and
        whose respawn failed)."""
        if self._reaped:
            return
        try:
            self.request("shutdown", timeout=timeout)
        except (OSError, EOFError, ReproError):
            pass
        self.process.join(timeout=timeout)
        self.reap()

    def kill(self) -> None:
        """SIGKILL the worker (fault injection); no cleanup runs inside."""
        self.process.kill()
        self.process.join(timeout=10.0)

    def reap(self) -> None:
        """Release the pipe and the process record (idempotent)."""
        if self._reaped:
            return
        self._reaped = True
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10.0)
        if self.process.is_alive():  # pragma: no cover - stuck in kernel
            self.process.kill()
            self.process.join(timeout=10.0)
        self.process.close()

    def __repr__(self) -> str:
        if self._reaped:
            return f"ShardProcess(index={self.index}, pid={self.pid}, reaped)"
        alive = "alive" if self.process.is_alive() else "dead"
        return f"ShardProcess(index={self.index}, pid={self.pid}, {alive})"
