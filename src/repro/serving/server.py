"""The multi-tenant serving facade: one object, the whole tier.

:class:`DrillDownServer` composes the serving subsystem —

* a :class:`~repro.serving.TableCatalog` (tables registered once,
  exported once, one shared :class:`~repro.core.parallel.CountingPool`),
* a :class:`~repro.serving.SessionRegistry` (TTL + LRU session
  lifecycle per tenant),
* a :class:`~repro.serving.ContextStore` (cross-session reuse of
  identical candidate lattices, copy-on-first-expand),
* a :class:`~repro.serving.FairScheduler` (per-tenant token budgets,
  round-robin batch dispatch on the pool),
* optionally a :class:`~repro.serving.persistence.SnapshotStore` +
  :class:`~repro.serving.persistence.ReaperThread` (``persist_dir=``:
  durable session trees, warm restart, background TTL expiry and
  checkpointing) —

behind a programmatic API mirroring the single-user
:class:`~repro.session.DrillDownSession` (expand / expand_star /
collapse / render), addressed by session id.  The stdlib HTTP front
end (:mod:`repro.serving.http`) is a thin JSON shim over exactly this
facade, so anything reachable over the wire is reachable — and tested —
in process.

Results are identical to standalone sessions: the catalog, store, and
scheduler only change *where bytes live* and *when work runs*, never
which rules win (pinned by ``tests/serving/test_server.py``).

Weight functions are resolved through a per-server registry
(``"size"``, ``"bits"``, ``"size_minus_one"``), so every tenant asking
for the same weighting shares one instance — the identity the
:class:`ContextStore` keys on.
"""

from __future__ import annotations

import copy
import os
import threading
import time
from typing import Callable

from repro.core.parallel import CountingPool, deadline_scope
from repro.core.rule import Rule
from repro.core.weights import WeightFunction
from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServingError,
    ShardError,
    SnapshotError,
)
from repro.serving.catalog import WEIGHT_FUNCTIONS, TableCatalog
from repro.serving.contexts import ContextStore
from repro.serving.faults import ChaosPolicy
from repro.serving.persistence import (
    ReaperThread,
    SessionSnapshot,
    SnapshotStore,
)
from repro.serving.registry import SessionEntry, SessionRegistry
from repro.serving.scheduler import FairScheduler
from repro.session.session import DrillDownSession, SessionNode
from repro.table.table import Table

#: Re-exported from :mod:`repro.serving.catalog`, where the weight
#: registry now lives (registration-time marginal precompute must
#: resolve the same shared instances tenant sessions key contexts on).
__all__ = ["DrillDownServer", "WEIGHT_FUNCTIONS"]


class DrillDownServer:
    """A multi-tenant smart drill-down service in one process.

    Parameters
    ----------
    pool, n_workers:
        The shared counting pool, forwarded to
        :class:`~repro.serving.TableCatalog` (an explicit ``pool`` is
        borrowed; ``n_workers >= 2`` builds a catalog-owned one;
        default serves serially).
    max_sessions, ttl_seconds:
        Session-registry knobs (LRU capacity, idle expiry).
    tenant_budget, refill_per_second:
        Default per-tenant token budget, denominated in *source rows
        per expansion*; ``None`` never throttles.  Override per tenant
        via ``server.scheduler.set_budget``.
    share_contexts:
        ``True`` (default) shares contexts through a server-owned
        :class:`ContextStore`, bounded by ``max_context_prototypes``;
        a :class:`ContextStore` instance is used as-is (bring your own
        cap); ``False`` gives every session private contexts only (the
        benchmark's ablation knob).
    max_context_prototypes:
        LRU cap on the server-owned context store; ``None`` is
        unbounded (the store is still bounded per table and dropped on
        ``unregister_table``).
    persist_dir:
        Directory for durable session snapshots; ``None`` (default)
        serves memory-only.  With a directory, sessions are
        checkpointed (dirty-only) by the reaper and on :meth:`close`,
        and *warm restart* restores them: construct a new server over
        the same directory, re-register the same tables, and every
        snapshotted session re-enters the registry under its original
        id, tenant, and recency — its rendered tree and subsequent
        expansions bit-identical to a never-restarted session.
    persist_max_bytes:
        Cap on the snapshot directory's total footprint; saves past it
        evict whole snapshots oldest-recency first (see
        :class:`~repro.serving.persistence.SnapshotStore`).  ``None``
        (default) is unbounded.
    checkpoint_interval:
        Seconds between dirty-session checkpoint sweeps (only
        meaningful with ``persist_dir`` and a running reaper); defaults
        to ``reaper_interval``.
    reaper_interval:
        Period of the background :class:`~repro.serving.persistence.\
ReaperThread` enforcing TTL expiry (and checkpointing) without
        piggy-backing on request traffic; ``None`` (default) starts no
        thread — expiry then runs on registry traffic and via explicit
        :meth:`reap` / :meth:`checkpoint_all` calls.
    clock:
        Injectable monotonic clock shared by the registry and
        scheduler (tests).
    wall_clock:
        Injectable *wall* clock (default ``time.time``) for the two
        places a monotonic reading cannot work because it does not
        survive restarts: uptime in :meth:`stats`, and the downtime
        correction applied to restored sessions' recency (snapshots
        store ``saved_at`` as wall time).  Tests freeze it alongside
        ``clock`` to make warm-restart idle math deterministic.
    session_id_prefix:
        Prefix of generated session ids (default ``"sess"``).  The
        sharded router gives each shard's server a distinct prefix so
        ids stay globally unique across worker processes.
    sample_budget:
        When set, every registered table also gets pre-built samples
        (uniform + per-column stratified, this many tuples total — see
        :class:`~repro.serving.TableCatalog`), enabling approximate
        expansions (``approx=True`` on :meth:`expand` /
        :meth:`expand_star` / :meth:`expand_traditional`).  With
        ``persist_dir``, sample row ids persist under
        ``persist_dir/samples`` so warm restarts skip the re-scan.
    sample_seed:
        Base seed for the deterministic sample draws (default 0).
    default_approx:
        Serve expansions approximately unless a call passes
        ``approx=False``.  Requires ``sample_budget``.
    default_error_target:
        Default relative half-width bound for approximate expansions;
        an estimate crossing it escalates the expansion to exact
        mining (see :class:`~repro.session.DrillDownSession`).
    default_deadline:
        Relative per-request deadline in seconds applied when a call
        does not pass its own ``deadline=``; ``None`` (default) never
        bounds.  The deadline spine covers admission, the per-session
        entry lock, and the fair scheduler's dispatch queue; an abort
        raises :class:`~repro.errors.DeadlineExceededError` (HTTP 503
        + ``Retry-After``) and refunds the expansion's budget charge.
        A batch already submitted to pool workers runs to completion —
        the deadline bounds waiting, not compute in flight.
    chaos:
        Optional in-process :class:`~repro.serving.faults.ChaosPolicy`
        applied to expansions (``wedge``/``delay`` sleep, ``error``
        raises a typed :class:`~repro.errors.ShardError`); the
        pipe-level kinds (``crash``, ``drop_reply``) are meaningless in
        process and ignored.  Fault drills only — never set in
        production.
    """

    def __init__(
        self,
        *,
        pool: CountingPool | None = None,
        n_workers: int | None = None,
        max_sessions: int | None = 64,
        ttl_seconds: float | None = None,
        tenant_budget: float | None = None,
        refill_per_second: float = 0.0,
        share_contexts: bool | ContextStore = True,
        max_context_prototypes: int | None = None,
        persist_dir: str | os.PathLike | None = None,
        persist_max_bytes: int | None = None,
        checkpoint_interval: float | None = None,
        reaper_interval: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
        session_id_prefix: str = "sess",
        default_deadline: float | None = None,
        chaos: ChaosPolicy | None = None,
        sample_budget: int | None = None,
        sample_seed: int = 0,
        default_approx: bool = False,
        default_error_target: float = 0.1,
        marginal_cache: bool = True,
        marginal_mw: float = 5.0,
        marginal_weightings: tuple = ("size",),
        marginal_pairs: int = 0,
    ):
        if default_approx and sample_budget is None:
            raise ServingError(
                "default_approx=True requires a sample_budget to mine on"
            )
        self.default_approx = bool(default_approx)
        if not float(default_error_target) > 0:
            raise ServingError("default_error_target must be > 0")
        self.default_error_target = float(default_error_target)
        sample_dir = (
            os.path.join(os.fspath(persist_dir), "samples")
            if (persist_dir is not None and sample_budget is not None)
            else None
        )
        marginal_dir = (
            os.path.join(os.fspath(persist_dir), "marginals")
            if (persist_dir is not None and marginal_cache)
            else None
        )
        self.catalog = TableCatalog(
            pool=pool,
            n_workers=n_workers,
            sample_budget=sample_budget,
            sample_seed=sample_seed,
            sample_dir=sample_dir,
            marginal_mw=float(marginal_mw) if marginal_cache else None,
            marginal_weightings=marginal_weightings,
            marginal_dir=marginal_dir,
            marginal_pairs=marginal_pairs,
        )
        self.registry = SessionRegistry(
            max_sessions=max_sessions,
            ttl_seconds=ttl_seconds,
            clock=clock,
            id_prefix=session_id_prefix,
        )
        if isinstance(share_contexts, ContextStore):
            self.contexts: ContextStore | None = share_contexts
        elif share_contexts:
            self.contexts = ContextStore(max_prototypes=max_context_prototypes)
        else:
            self.contexts = None
        self.scheduler = FairScheduler(
            default_budget=tenant_budget,
            default_refill_per_second=refill_per_second,
            clock=clock,
        )
        if self.catalog.pool is not None:
            self.catalog.pool.scheduler = self.scheduler
        self._clock = clock
        self._wall_clock = wall_clock
        self._closed = False
        if default_deadline is not None and default_deadline <= 0:
            raise ServingError("default_deadline must be > 0 seconds (or None)")
        self.default_deadline = default_deadline
        self.chaos = chaos
        self.deadline_aborts = 0
        # -- durability: store, pending restores, reaper -------------------------
        self._persist_lock = threading.Lock()
        self._pending_restore: dict[str, list[SessionSnapshot]] = {}
        self.restored = 0
        self.restore_skipped = 0
        self.checkpoint_errors = 0
        try:
            if persist_dir is not None:
                self.store: SnapshotStore | None = SnapshotStore(
                    persist_dir, max_bytes=persist_max_bytes
                )
                # Warm restart: decode every snapshot now (corrupt/stale
                # files are skipped with a counter inside the store) and
                # hold them pending until their table is re-registered —
                # the snapshot stores no rows, only the table's name.
                for snapshot in self.store.load_all():
                    self._pending_restore.setdefault(snapshot.table, []).append(snapshot)
                self.registry.reserve_ids(self.store.session_ids())
            else:
                self.store = None
            # Always installed (not only with a store): eviction is also
            # the moment a session's table-version pin is released, which
            # may reap the version it held alive.
            self.registry.on_evict = self._on_registry_evict
            self.catalog.on_reap = self._on_version_reaped
            self.reaper: ReaperThread | None = None
            if reaper_interval is not None:
                self.reaper = ReaperThread(
                    reap=self.reap,
                    checkpoint=None if self.store is None else self.checkpoint_all,
                    interval=reaper_interval,
                    checkpoint_interval=checkpoint_interval,
                )
                self.reaper.start()
        except BaseException:
            # The catalog (and its owned pool: worker processes +
            # shared-memory exports) is already live; a half-built
            # server the caller never sees must not leak it.
            self.catalog.close()
            raise
        self.started_at = self._wall_clock()

    # -- tables ------------------------------------------------------------------

    def register_table(self, name: str, table: Table) -> Table:
        """Register (and export, once) a table for every tenant to mine.

        With ``persist_dir``, this is also the warm-restart trigger:
        any on-disk session snapshots naming ``name`` are restored over
        ``table`` now (the snapshot holds the tree, not the rows) and
        re-enter the registry with their original id, tenant, and
        recency.  Snapshots that no longer fit — unknown weighting
        name, mismatched columns, id collision — are skipped and
        counted, never fatal.
        """
        self.catalog.register(name, table)
        self._restore_pending(name, table)
        return table

    def append_rows(self, name: str, rows) -> dict:
        """Append ``rows`` to a served table as a new catalog version.

        Live sessions keep the version they were created on — their
        trees, contexts, and estimates stay bit-identical — while
        sessions created after this call mine the grown table.  The
        expensive per-table structures are maintained incrementally
        (export grow-and-copy, delta first-pick bincounts, reservoir
        freshness; see :meth:`TableCatalog.append_rows`).  Returns the
        new version's summary (``version``, ``rows``, ``appended``).
        """
        if self._closed:
            raise ServingError("server is closed")
        return self.catalog.append_rows(name, rows).describe()

    def replace_table(self, name: str, table: Table) -> dict:
        """Swap a served table's data wholesale as a new catalog version.

        The explicit alternative to the (refused) re-register of a name
        with different data; pinned sessions are unaffected, per-table
        structures rebuild cold.  Returns the new version's summary.
        """
        if self._closed:
            raise ServingError("server is closed")
        return self.catalog.replace_table(name, table).describe()

    def _restore_pending(self, name: str, table: Table) -> None:
        """Admit every pending snapshot taken over catalog table ``name``."""
        with self._persist_lock:
            pending = self._pending_restore.pop(name, [])
        for snapshot in pending:  # already least-recent first (store order)
            # Restored sessions pin the *current* latest version: the
            # snapshot stores no rows, so it is restored over whatever
            # ``table`` was just registered (its ``table_version`` field
            # is informational provenance, not an address).
            record = self.catalog.pin(name)
            try:
                wf = self.weight(snapshot.wf_spec, table)
                session = DrillDownSession.restore(
                    table,
                    snapshot.state,
                    wf=wf,
                    tenant=snapshot.tenant,
                    pool=self.catalog.pool,
                    context_store=self.contexts,
                    samples=self.catalog.samples_for(name),
                    default_approx=self.default_approx,
                    error_target=self.default_error_target,
                    marginals=self.catalog.marginals_for(
                        name, snapshot.wf_spec or wf, snapshot.state.get("mw")
                    ),
                )
            except ReproError:
                self.catalog.unpin(name, record.version)
                with self._persist_lock:
                    self.restore_skipped += 1
                continue
            # Monotonic clocks do not survive restarts: recency was
            # persisted as idle/age seconds, and the measured downtime
            # (wall clock) is added so TTL keeps counting while the
            # server was down.
            downtime = max(0.0, self._wall_clock() - snapshot.saved_at)
            now = self._clock()
            try:
                self.registry.admit(
                    session,
                    session_id=snapshot.session_id,
                    tenant=snapshot.tenant,
                    created_at=now - (snapshot.age_seconds + downtime),
                    last_used=now - (snapshot.idle_seconds + downtime),
                    expansions=snapshot.expansions,
                    table=name,
                    wf_spec=snapshot.wf_spec,
                    table_version=record.version,
                )
            except ServingError:
                session.close()
                self.catalog.unpin(name, record.version)
                with self._persist_lock:
                    self.restore_skipped += 1
                continue
            with self._persist_lock:
                self.restored += 1

    def unregister_table(self, name: str) -> None:
        """Forget a table; drop its context prototypes and weight cache."""
        try:
            table = self.catalog.get(name)
        except ServingError:
            return
        self.catalog.unregister(name)
        if self.contexts is not None:
            self.contexts.drop_table(table)

    def tables(self) -> tuple[str, ...]:
        return self.catalog.names()

    # -- weight registry ---------------------------------------------------------

    def weight(self, spec: str | WeightFunction, table: Table) -> WeightFunction:
        """Resolve a weighting name to the catalog's shared instance.

        Delegates to :meth:`TableCatalog.weight` — the registry lives
        there so registration-time marginal precompute and tenant
        sessions resolve the *same* instances (the identity both the
        :class:`~repro.serving.ContextStore` and the first-pick caches
        key on).
        """
        return self.catalog.weight(spec, table)

    # -- sessions ----------------------------------------------------------------

    def create_session(
        self,
        table: str,
        *,
        tenant: str = "default",
        wf: str | WeightFunction = "size",
        k: int = 3,
        mw: float = 5.0,
        measure: str | None = None,
        deadline: float | None = None,
    ) -> str:
        """Open a drill-down session for ``tenant`` over a catalog table.

        The session borrows the catalog's pool (one export serves every
        tenant) and, when enabled, the shared context store.  Returns
        the session id clients address every later call with.
        """
        if self._closed:
            raise ServingError("server is closed")
        self._resolve_deadline(deadline)
        # New sessions pin the latest version; the pin holds the version
        # record (and so its export) alive until the session leaves the
        # registry, even across later appends and unregisters.
        record = self.catalog.pin(table)
        source = record.table
        try:
            session = DrillDownSession(
                source,
                wf=self.weight(wf, source),
                k=k,
                mw=mw,
                measure=measure,
                pool=self.catalog.pool,
                context_store=self.contexts,
                tenant=tenant,
                samples=self.catalog.samples_for(table),
                default_approx=self.default_approx,
                error_target=self.default_error_target,
                marginals=self.catalog.marginals_for(table, wf, mw),
            )
            return self.registry.add(
                session,
                tenant=tenant,
                table=table,
                wf_spec=wf if isinstance(wf, str) else None,
                table_version=record.version,
            ).session_id
        except BaseException:
            self.catalog.unpin(table, record.version)
            raise

    def session(self, session_id: str) -> DrillDownSession:
        """The live session for ``session_id`` (touches TTL/LRU)."""
        return self.registry.get(session_id)

    def session_columns(
        self, session_id: str, *, deadline: float | None = None
    ) -> tuple[str, ...]:
        """Column names of the session's source table (touches TTL/LRU).

        Part of the serving facade the HTTP front end is written
        against — :class:`~repro.serving.ShardRouter` implements the
        same method without a live session object in this process.
        """
        self._resolve_deadline(deadline)
        return self.registry.get(session_id).column_names

    def close_session(self, session_id: str) -> bool:
        return self.registry.close(session_id)

    # -- operations --------------------------------------------------------------

    def _resolve_deadline(self, deadline: float | None) -> float | None:
        """The absolute deadline for one request (``None`` = unbounded).

        ``deadline`` is relative seconds (per request, e.g. from the
        HTTP layer's ``X-Deadline`` header), falling back to
        :attr:`default_deadline`.  A non-positive remaining budget —
        the front end passes what is *left* after earlier calls in the
        same request — fails admission immediately.
        """
        deadline = self.default_deadline if deadline is None else deadline
        if deadline is None:
            return None
        if deadline <= 0:
            self.deadline_aborts += 1
            raise DeadlineExceededError(
                f"deadline budget of {deadline:g}s was already spent before "
                "any work ran",
                retry_after=1.0,
            )
        return self._clock() + deadline

    def _apply_chaos(self, op: str) -> None:
        """In-process fault injection (see the ``chaos`` parameter)."""
        policy = self.chaos
        if policy is None:
            return
        rule = policy.fire(op)
        if rule is None:
            return
        if rule.kind in ("wedge", "delay"):
            time.sleep(rule.seconds)
        elif rule.kind == "error":
            raise ShardError(f"chaos: injected failure on {op!r}")

    def _run_expansion(
        self,
        session_id: str,
        operation,
        *,
        op: str = "expand",
        deadline: float | None = None,
    ) -> list[SessionNode]:
        """Meter and serialise one expansion on one session.

        One expansion costs its source's row count in tokens — an upper
        bound on the rows one counting pass scans, charged *before* any
        work runs so throttling can never hang mid-search.  An
        expansion *rejected before any table work* — rule not displayed
        or already expanded, invalid ``k``, unknown column, session
        closed underneath us, a deadline that expired waiting for the
        entry lock or a dispatch turn: every typed
        :class:`~repro.errors.ReproError` the validation and deadline
        layers raise pre-mining — refunds the charge, so failed and
        deadline-aborted requests never burn a tenant's budget.  An
        *infrastructure* failure mid-mining (a dead worker, a
        ``MemoryError``: anything non-``ReproError``) keeps the charge:
        the counting pass the budget meters already scanned rows.

        The per-session ``expansions`` counter and ``dirty`` flag are
        updated under ``entry.lock`` — the entry is shared across the
        threaded HTTP front end's request threads, and an unlocked
        read-modify-write loses updates.  With a deadline, the lock
        acquire itself is bounded (:meth:`SessionEntry.hold`) and the
        deadline rides the thread-local
        :func:`~repro.core.parallel.deadline_scope` down into the fair
        scheduler's dispatch gate.
        """
        deadline_at = self._resolve_deadline(deadline)
        self._apply_chaos(op)
        entry = self.registry.entry(session_id)
        cost = float(entry.session.source_rows)
        self.scheduler.charge(entry.tenant, cost)
        try:
            with entry.hold(deadline_at, self._clock):
                with deadline_scope(deadline_at):
                    children = operation(entry.session)
                entry.expansions += 1
                entry.dirty = True
        except ReproError as exc:
            # The library's deliberate errors (SessionError, SchemaError
            # for a bad column, RuleError, ...) are all raised by the
            # validation layers before counting starts — a rejection,
            # not half-done mining.
            if isinstance(exc, DeadlineExceededError):
                self.deadline_aborts += 1
            self.scheduler.refund(entry.tenant, cost)
            raise
        return children

    def expand(
        self,
        session_id: str,
        rule: Rule | None = None,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
        deadline: float | None = None,
    ) -> list[SessionNode]:
        """Smart drill-down on ``rule`` (default: the root) for one tenant.

        ``approx=True`` mines on the table's pre-built sample (requires
        a ``sample_budget``); children then carry ``estimate`` metadata
        and an expansion whose interval crosses ``error_target``
        escalates to exact mining.  ``approx``/``error_target`` default
        to the server's ``default_approx``/``default_error_target``.
        """
        return self._run_expansion(
            session_id,
            lambda session: session.expand(
                rule if rule is not None else session.root.rule,
                k=k, approx=approx, error_target=error_target,
            ),
            op="expand",
            deadline=deadline,
        )

    def expand_star(
        self,
        session_id: str,
        rule: Rule,
        column: int | str,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
        deadline: float | None = None,
    ) -> list[SessionNode]:
        """Star drill-down on a ``?`` cell for one tenant."""
        return self._run_expansion(
            session_id,
            lambda session: session.expand_star(
                rule, column, k=k, approx=approx, error_target=error_target
            ),
            op="expand_star",
            deadline=deadline,
        )

    def expand_traditional(
        self,
        session_id: str,
        rule: Rule,
        column: int | str,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
        deadline: float | None = None,
    ) -> list[SessionNode]:
        """Classic OLAP drill-down for one tenant (metered like the others)."""
        return self._run_expansion(
            session_id,
            lambda session: session.expand_traditional(
                rule, column, k=k, approx=approx, error_target=error_target
            ),
            op="expand_traditional",
            deadline=deadline,
        )

    def collapse(self, session_id: str, rule: Rule, *, deadline: float | None = None) -> None:
        """Roll-up: free (no token charge) — it touches no table data."""
        deadline_at = self._resolve_deadline(deadline)
        entry = self.registry.entry(session_id)
        with entry.hold(deadline_at, self._clock):
            entry.session.collapse(rule)
            entry.dirty = True

    def displayed(self, session_id: str) -> list[SessionNode]:
        entry = self.registry.entry(session_id)
        with entry.lock:
            return entry.session.displayed()

    def tree(self, session_id: str, *, deadline: float | None = None) -> SessionNode:
        """A consistent deep snapshot of the session's displayed tree.

        Taken under the per-session lock and deep-copied, so a reader
        polling the tree while another of the tenant's requests is
        mid-expand can never observe (or retain) a half-attached
        subtree.  The HTTP front end serialises this snapshot.
        """
        deadline_at = self._resolve_deadline(deadline)
        entry = self.registry.entry(session_id)
        with entry.hold(deadline_at, self._clock):
            return copy.deepcopy(entry.session.root)

    def render(
        self,
        session_id: str,
        *,
        sort_display_by_count: bool = False,
        deadline: float | None = None,
    ) -> str:
        """The session's displayed tree as the paper's dotted table."""
        deadline_at = self._resolve_deadline(deadline)
        entry = self.registry.entry(session_id)
        with entry.hold(deadline_at, self._clock):
            return entry.session.to_text(sort_display_by_count=sort_display_by_count)

    # -- durability ----------------------------------------------------------------

    def reap(self) -> list[str]:
        """Expire idle sessions now (the reaper's timer target)."""
        return self.registry.evict_expired()

    def checkpoint_all(self, *, only_dirty: bool = True) -> int:
        """Snapshot sessions to the store; returns how many were written.

        ``only_dirty`` (default) skips sessions unchanged since their
        last checkpoint — the reaper's steady-state sweep.  Sessions
        that cannot be snapshotted (created with a bring-your-own
        weight-function instance, so no name to restore by; or holding
        an unserialisable rule value) are skipped and, on error,
        counted in ``checkpoint_errors``.
        """
        if self.store is None:
            return 0
        written = 0
        for entry in self.registry.entries():
            if self._checkpoint_entry(entry, only_dirty=only_dirty):
                written += 1
        return written

    def checkpoint(self, session_id: str) -> bool:
        """Snapshot one session now (even if clean); ``False`` if it
        is not live or not snapshot-able.  Does not touch TTL/LRU —
        a checkpoint is not the tenant coming back."""
        if self.store is None:
            return False
        entry = self.registry.peek(session_id)
        if entry is None:
            return False
        return self._checkpoint_entry(entry, only_dirty=False)

    def _checkpoint_entry(self, entry: SessionEntry, *, only_dirty: bool) -> bool:
        assert self.store is not None
        if entry.wf_spec is None or entry.table is None:
            return False  # bring-your-own wf instance: not restorable by name
        now = self._clock()
        with entry.lock:
            # "Dirty" for a snapshot means tree *or recency*: read-only
            # touches (render, lookup) move last_used without setting
            # the dirty flag, and restoring yesterday's idle_seconds
            # for a session that was active until shutdown would get it
            # reaped as stale on the first post-restart sweep.
            touched = (
                entry.checkpointed_at is None
                or entry.last_used > entry.checkpointed_at
            )
            if only_dirty and not entry.dirty and not touched:
                return False
            # Snapshot under the entry lock (a consistent tree, never
            # half-attached) and clear the flag optimistically; the
            # disk write happens outside the lock so one slow fsync
            # never stalls the session's own requests.
            state = entry.session.snapshot()
            expansions = entry.expansions
            entry.dirty = False
        snapshot = SessionSnapshot(
            session_id=entry.session_id,
            table=entry.table,
            tenant=entry.tenant,
            wf_spec=entry.wf_spec,
            state=state,
            expansions=expansions,
            table_version=entry.table_version,
            idle_seconds=max(0.0, now - entry.last_used),
            age_seconds=max(0.0, now - entry.created_at),
            saved_at=self._wall_clock(),
        )
        try:
            self.store.save(snapshot)
        except OSError:
            # Transient (disk full, permissions flap): retry next sweep.
            with entry.lock:
                entry.dirty = True
            with self._persist_lock:
                self.checkpoint_errors += 1
            return False
        except SnapshotError:
            # Deterministic (an unserialisable rule value): re-marking
            # dirty would re-serialise the doomed tree every sweep
            # forever.  Stamp the attempt so sweeps stay quiet until
            # the next touch or mutation — which may well remove the
            # offending node.
            with entry.lock:
                entry.checkpointed_at = now
            with self._persist_lock:
                self.checkpoint_errors += 1
            return False
        # A close/eviction can race the sweep: its on_evict hook may
        # have deleted the snapshot *before* our save re-created it,
        # silently resurrecting a dead session on the next restart.
        # Re-check liveness after the save and undo if the session is
        # gone (any later eviction's own delete is ordered after this).
        if self.registry.peek(entry.session_id) is None:
            self.store.delete(entry.session_id)
            return False
        with entry.lock:
            entry.checkpointed_at = now
        return True

    def _on_registry_evict(self, entry: SessionEntry, reason: str) -> None:
        """Orphan cleanup: an evicted/closed session's snapshot goes
        too, and its table-version pin is released — when that was the
        last pin on a superseded (or unregistered) version, the version
        is reaped: export unlinked, artifacts purged, context
        prototypes dropped (via :attr:`TableCatalog.on_reap`).

        Fired for TTL expiry, LRU eviction, and explicit closes — but
        not by ``close_all`` (shutdown keeps snapshots for the next
        warm restart; see :meth:`SessionRegistry.close_all`, and the
        catalog's own close releases everything anyway).
        """
        if self.store is not None:
            self.store.delete(entry.session_id)
        if entry.table is not None and entry.table_version is not None:
            self.catalog.unpin(entry.table, entry.table_version)

    def _on_version_reaped(self, name: str, table: Table) -> None:
        """Drop derived per-table state when the catalog reaps a version."""
        if self.contexts is not None:
            self.contexts.drop_table(table)

    # -- introspection / lifecycle -----------------------------------------------

    def _persistence_stats(self) -> dict | None:
        if self.store is None:
            return None
        with self._persist_lock:
            counters = {
                "restored": self.restored,
                "restore_skipped": self.restore_skipped,
                "checkpoint_errors": self.checkpoint_errors,
                "pending_restore": sum(
                    len(v) for v in self._pending_restore.values()
                ),
            }
        return {
            **self.store.stats(),
            **counters,
            "reaper": None if self.reaper is None else self.reaper.stats(),
        }

    def stats(self) -> dict:
        pool = self.catalog.pool
        return {
            "uptime_seconds": round(self._wall_clock() - self.started_at, 3),
            "default_deadline": self.default_deadline,
            "deadline_aborts": self.deadline_aborts,
            "default_approx": self.default_approx,
            "default_error_target": self.default_error_target,
            "samples": self.catalog.sample_stats(),
            "marginals": self.catalog.marginal_stats(),
            "versions": self.catalog.version_stats(),
            "tables": list(self.tables()),
            "registry": self.registry.stats(),
            "scheduler": self.scheduler.stats(),
            "contexts": None if self.contexts is None else self.contexts.stats(),
            "persistence": self._persistence_stats(),
            "pool": None
            if pool is None
            else {
                "n_workers": pool.n_workers,
                "usable": pool.usable,
                "exports": pool.export_count(),
            },
        }

    def close(self) -> None:
        """Shut the tier down gracefully: stop the reaper, checkpoint
        every dirty session (so a warm restart over the same
        ``persist_dir`` resumes exactly here), then close every session
        and the catalog (and its pool + exports, when catalog-owned).
        Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.reaper is not None:
            self.reaper.stop()
        if self.store is not None:
            self.checkpoint_all(only_dirty=True)
        self.registry.close_all()
        if self.contexts is not None:
            self.contexts.clear()
        self.catalog.close()

    def __enter__(self) -> "DrillDownServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DrillDownServer(tables={len(self.catalog)}, "
            f"sessions={len(self.registry)}, closed={self._closed})"
        )
