"""The multi-tenant serving facade: one object, the whole tier.

:class:`DrillDownServer` composes the serving subsystem —

* a :class:`~repro.serving.TableCatalog` (tables registered once,
  exported once, one shared :class:`~repro.core.parallel.CountingPool`),
* a :class:`~repro.serving.SessionRegistry` (TTL + LRU session
  lifecycle per tenant),
* a :class:`~repro.serving.ContextStore` (cross-session reuse of
  identical candidate lattices, copy-on-first-expand),
* a :class:`~repro.serving.FairScheduler` (per-tenant token budgets,
  round-robin batch dispatch on the pool) —

behind a programmatic API mirroring the single-user
:class:`~repro.session.DrillDownSession` (expand / expand_star /
collapse / render), addressed by session id.  The stdlib HTTP front
end (:mod:`repro.serving.http`) is a thin JSON shim over exactly this
facade, so anything reachable over the wire is reachable — and tested —
in process.

Results are identical to standalone sessions: the catalog, store, and
scheduler only change *where bytes live* and *when work runs*, never
which rules win (pinned by ``tests/serving/test_server.py``).

Weight functions are resolved through a per-server registry
(``"size"``, ``"bits"``, ``"size_minus_one"``), so every tenant asking
for the same weighting shares one instance — the identity the
:class:`ContextStore` keys on.
"""

from __future__ import annotations

import copy
import threading
import time
from typing import Callable

from repro.core.parallel import CountingPool
from repro.core.rule import Rule
from repro.core.weights import BitsWeight, SizeMinusOneWeight, SizeWeight, WeightFunction
from repro.errors import ServingError
from repro.serving.catalog import TableCatalog
from repro.serving.contexts import ContextStore
from repro.serving.registry import SessionRegistry
from repro.serving.scheduler import FairScheduler
from repro.session.session import DrillDownSession, SessionNode
from repro.table.table import Table

__all__ = ["DrillDownServer", "WEIGHT_FUNCTIONS"]

#: Weight functions creatable by name over the wire.  Factories take
#: the served table — Bits weighting derives per-column bit counts
#: from the table's dictionary sizes (§2.2).
WEIGHT_FUNCTIONS: dict[str, Callable[[Table], WeightFunction]] = {
    "size": lambda table: SizeWeight(),
    "bits": BitsWeight.for_table,
    "size_minus_one": lambda table: SizeMinusOneWeight(),
}


class DrillDownServer:
    """A multi-tenant smart drill-down service in one process.

    Parameters
    ----------
    pool, n_workers:
        The shared counting pool, forwarded to
        :class:`~repro.serving.TableCatalog` (an explicit ``pool`` is
        borrowed; ``n_workers >= 2`` builds a catalog-owned one;
        default serves serially).
    max_sessions, ttl_seconds:
        Session-registry knobs (LRU capacity, idle expiry).
    tenant_budget, refill_per_second:
        Default per-tenant token budget, denominated in *source rows
        per expansion*; ``None`` never throttles.  Override per tenant
        via ``server.scheduler.set_budget``.
    share_contexts:
        ``True`` (default) shares contexts through a server-owned
        :class:`ContextStore`, bounded by ``max_context_prototypes``;
        a :class:`ContextStore` instance is used as-is (bring your own
        cap); ``False`` gives every session private contexts only (the
        benchmark's ablation knob).
    max_context_prototypes:
        LRU cap on the server-owned context store; ``None`` is
        unbounded (the store is still bounded per table and dropped on
        ``unregister_table``).
    clock:
        Injectable monotonic clock shared by the registry and
        scheduler (tests).
    """

    def __init__(
        self,
        *,
        pool: CountingPool | None = None,
        n_workers: int | None = None,
        max_sessions: int | None = 64,
        ttl_seconds: float | None = None,
        tenant_budget: float | None = None,
        refill_per_second: float = 0.0,
        share_contexts: bool | ContextStore = True,
        max_context_prototypes: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.catalog = TableCatalog(pool=pool, n_workers=n_workers)
        self.registry = SessionRegistry(
            max_sessions=max_sessions, ttl_seconds=ttl_seconds, clock=clock
        )
        if isinstance(share_contexts, ContextStore):
            self.contexts: ContextStore | None = share_contexts
        elif share_contexts:
            self.contexts = ContextStore(max_prototypes=max_context_prototypes)
        else:
            self.contexts = None
        self.scheduler = FairScheduler(
            default_budget=tenant_budget,
            default_refill_per_second=refill_per_second,
            clock=clock,
        )
        if self.catalog.pool is not None:
            self.catalog.pool.scheduler = self.scheduler
        self._weights: dict[tuple[str, int], tuple[Table, WeightFunction]] = {}
        self._weights_lock = threading.Lock()
        self._closed = False
        self.started_at = time.time()

    # -- tables ------------------------------------------------------------------

    def register_table(self, name: str, table: Table) -> Table:
        """Register (and export, once) a table for every tenant to mine."""
        return self.catalog.register(name, table)

    def unregister_table(self, name: str) -> None:
        """Forget a table; drop its context prototypes and weight cache."""
        try:
            table = self.catalog.get(name)
        except ServingError:
            return
        self.catalog.unregister(name)
        if self.contexts is not None:
            self.contexts.drop_table(table)
        with self._weights_lock:
            for key in [k for k, (held, _wf) in self._weights.items() if held is table]:
                del self._weights[key]

    def tables(self) -> tuple[str, ...]:
        return self.catalog.names()

    # -- weight registry ---------------------------------------------------------

    def weight(self, spec: str | WeightFunction, table: Table) -> WeightFunction:
        """Resolve a weighting name to this server's shared instance.

        Sharing instances is load-bearing: the
        :class:`~repro.serving.ContextStore` keys weight functions by
        identity, so ``"size"`` must mean the *same* ``SizeWeight``
        object for every tenant on a table.  Instances are cached per
        ``(name, table)`` — Bits weighting is genuinely table-derived,
        and the context store never shares across tables anyway.  A
        :class:`WeightFunction` instance passes through unchanged
        (shared only if the caller reuses it).
        """
        if isinstance(spec, WeightFunction):
            return spec
        try:
            factory = WEIGHT_FUNCTIONS[spec]
        except KeyError:
            raise ServingError(
                f"unknown weight function {spec!r}; one of {sorted(WEIGHT_FUNCTIONS)}"
            ) from None
        key = (spec, id(table))
        with self._weights_lock:
            # The entry keeps a strong reference to its table: id() keys
            # alone could be silently recycled by a new table allocated
            # at a dead table's address.  Entries are purged by
            # :meth:`unregister_table`.
            entry = self._weights.get(key)
            if entry is None or entry[0] is not table:
                entry = self._weights[key] = (table, factory(table))
            return entry[1]

    # -- sessions ----------------------------------------------------------------

    def create_session(
        self,
        table: str,
        *,
        tenant: str = "default",
        wf: str | WeightFunction = "size",
        k: int = 3,
        mw: float = 5.0,
        measure: str | None = None,
    ) -> str:
        """Open a drill-down session for ``tenant`` over a catalog table.

        The session borrows the catalog's pool (one export serves every
        tenant) and, when enabled, the shared context store.  Returns
        the session id clients address every later call with.
        """
        if self._closed:
            raise ServingError("server is closed")
        source = self.catalog.get(table)
        session = DrillDownSession(
            source,
            wf=self.weight(wf, source),
            k=k,
            mw=mw,
            measure=measure,
            pool=self.catalog.pool,
            context_store=self.contexts,
            tenant=tenant,
        )
        return self.registry.add(session, tenant=tenant).session_id

    def session(self, session_id: str) -> DrillDownSession:
        """The live session for ``session_id`` (touches TTL/LRU)."""
        return self.registry.get(session_id)

    def close_session(self, session_id: str) -> bool:
        return self.registry.close(session_id)

    # -- operations --------------------------------------------------------------

    def _run_expansion(self, session_id: str, operation) -> list[SessionNode]:
        """Meter and serialise one expansion on one session.

        One expansion costs its source's row count in tokens — an upper
        bound on the rows one counting pass scans, charged *before* any
        work runs so throttling can never hang mid-search.  An
        expansion rejected before doing table work (rule not displayed,
        session closed underneath us, ...) refunds the charge — failed
        requests must not burn a tenant's budget.
        """
        entry = self.registry.entry(session_id)
        cost = float(entry.session.source_rows)
        self.scheduler.charge(entry.tenant, cost)
        try:
            with entry.lock:
                children = operation(entry.session)
        except Exception:
            self.scheduler.refund(entry.tenant, cost)
            raise
        entry.expansions += 1
        return children

    def expand(
        self, session_id: str, rule: Rule | None = None, *, k: int | None = None
    ) -> list[SessionNode]:
        """Smart drill-down on ``rule`` (default: the root) for one tenant."""
        return self._run_expansion(
            session_id,
            lambda session: session.expand(
                rule if rule is not None else session.root.rule, k=k
            ),
        )

    def expand_star(
        self,
        session_id: str,
        rule: Rule,
        column: int | str,
        *,
        k: int | None = None,
    ) -> list[SessionNode]:
        """Star drill-down on a ``?`` cell for one tenant."""
        return self._run_expansion(
            session_id, lambda session: session.expand_star(rule, column, k=k)
        )

    def expand_traditional(
        self,
        session_id: str,
        rule: Rule,
        column: int | str,
        *,
        k: int | None = None,
    ) -> list[SessionNode]:
        """Classic OLAP drill-down for one tenant (metered like the others)."""
        return self._run_expansion(
            session_id, lambda session: session.expand_traditional(rule, column, k=k)
        )

    def collapse(self, session_id: str, rule: Rule) -> None:
        """Roll-up: free (no token charge) — it touches no table data."""
        entry = self.registry.entry(session_id)
        with entry.lock:
            entry.session.collapse(rule)

    def displayed(self, session_id: str) -> list[SessionNode]:
        entry = self.registry.entry(session_id)
        with entry.lock:
            return entry.session.displayed()

    def tree(self, session_id: str) -> SessionNode:
        """A consistent deep snapshot of the session's displayed tree.

        Taken under the per-session lock and deep-copied, so a reader
        polling the tree while another of the tenant's requests is
        mid-expand can never observe (or retain) a half-attached
        subtree.  The HTTP front end serialises this snapshot.
        """
        entry = self.registry.entry(session_id)
        with entry.lock:
            return copy.deepcopy(entry.session.root)

    def render(self, session_id: str, *, sort_display_by_count: bool = False) -> str:
        """The session's displayed tree as the paper's dotted table."""
        entry = self.registry.entry(session_id)
        with entry.lock:
            return entry.session.to_text(sort_display_by_count=sort_display_by_count)

    # -- introspection / lifecycle -----------------------------------------------

    def stats(self) -> dict:
        pool = self.catalog.pool
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "tables": list(self.tables()),
            "registry": self.registry.stats(),
            "scheduler": self.scheduler.stats(),
            "contexts": None if self.contexts is None else self.contexts.stats(),
            "pool": None
            if pool is None
            else {
                "n_workers": pool.n_workers,
                "usable": pool.usable,
                "exports": pool.export_count(),
            },
        }

    def close(self) -> None:
        """Shut the tier down: every session, then the catalog (and its
        pool + exports, when catalog-owned).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.registry.close_all()
        if self.contexts is not None:
            self.contexts.clear()
        self.catalog.close()

    def __enter__(self) -> "DrillDownServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DrillDownServer(tables={len(self.catalog)}, "
            f"sessions={len(self.registry)}, closed={self._closed})"
        )
