"""Cross-session sharing of read-compatible search contexts.

Two tenants exploring the same catalog table with the same weighting
and ``mw`` build byte-for-byte identical candidate lattices — the
:class:`~repro.core.search_cache.SearchContext` is a pure function of
``(table, weight function, mw, measures, max_rule_size, prune)`` plus
the drill-down node it serves.  The :class:`ContextStore` makes the
second tenant skip that work:

* after a session finishes an expansion with a freshly built context,
  it **publishes** the context here; the store keeps a frozen
  :meth:`~repro.core.search_cache.SearchContext.clone` as the
  *prototype* for that configuration (first writer wins — later
  publishes of an equal configuration are dropped, the lattices are
  identical anyway);
* before a session builds a context from scratch, it asks for a
  **lease**; on a hit it receives a *fresh clone* of the prototype —
  copy-on-first-expand, so the tenant owns its copy outright and
  concurrent searches can never corrupt each other — with ``_built``
  state, skipping the full-table first-pick passes.

Keys are ``(table identity, drill-down tag)`` where the tag comes from
:func:`repro.core.drilldown.drilldown_tag`; the weight function
participates by identity, which is why the serving facade hands every
tenant the same weight-function instances (see
:class:`~repro.serving.DrillDownServer`).  Prototypes hold strong
references to their table; :meth:`drop_table` releases everything for
an unregistered table, and ``max_prototypes`` (LRU) bounds the store.
Sharing never changes results — the equivalence is pinned by
``tests/serving/test_context_store.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.core.parallel import CountingPool
from repro.core.search_cache import SearchContext
from repro.table.table import Table

__all__ = ["ContextStore"]


class ContextStore:
    """Prototype cache of :class:`SearchContext`s shared across sessions.

    ``max_prototypes`` caps the store (least-recently-leased evicted
    first); ``None`` means unbounded.
    """

    def __init__(self, *, max_prototypes: int | None = None):
        self._lock = threading.Lock()
        self._prototypes: "OrderedDict[tuple, SearchContext]" = OrderedDict()
        self.max_prototypes = max_prototypes
        self.hits = 0
        self.misses = 0
        self.publishes = 0

    @staticmethod
    def _key(table: Table, tag: tuple) -> tuple:
        # Table identity, not equality: served tables are registered
        # objects, and two equal-valued tables still have distinct
        # (incompatible) filtered sub-tables and exports.
        return (id(table), tag)

    def lease(
        self,
        table: Table,
        tag: tuple,
        *,
        pool: CountingPool | None = None,
        tenant: Any = None,
    ) -> SearchContext | None:
        """A private clone of the prototype for ``(table, tag)``, or ``None``.

        The clone is exclusively the caller's: mutating it (searching
        through it) never touches the prototype or any other lease.
        ``pool``/``tenant`` bind the clone's counting backend (see
        :meth:`SearchContext.clone`).
        """
        with self._lock:
            prototype = self._prototypes.get(self._key(table, tag))
            if prototype is None:
                self.misses += 1
                return None
            self._prototypes.move_to_end(self._key(table, tag))
            self.hits += 1
        # Prototypes are frozen (never searched), so cloning outside the
        # lock is safe even with concurrent leases.
        return prototype.clone(pool=pool, tenant=tenant)

    def publish(self, table: Table, tag: tuple, context: SearchContext) -> bool:
        """Offer ``context`` as the prototype for ``(table, tag)``.

        Stores a frozen clone (the caller keeps using — and mutating —
        its own context).  First writer wins; returns whether this call
        installed the prototype.
        """
        key = self._key(table, tag)
        with self._lock:
            if key in self._prototypes:
                return False
        snapshot = context.clone()  # detached: no backend, fresh stats
        with self._lock:
            if key in self._prototypes:  # lost a publish race: identical anyway
                return False
            self._prototypes[key] = snapshot
            self.publishes += 1
            while (
                self.max_prototypes is not None
                and len(self._prototypes) > self.max_prototypes
            ):
                self._prototypes.popitem(last=False)
        return True

    def drop_table(self, table: Table) -> int:
        """Release every prototype built over ``table``; returns the count."""
        with self._lock:
            doomed = [key for key in self._prototypes if key[0] == id(table)]
            for key in doomed:
                del self._prototypes[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._prototypes.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._prototypes)

    def stats(self) -> dict:
        with self._lock:
            return {
                "prototypes": len(self._prototypes),
                "hits": self.hits,
                "misses": self.misses,
                "publishes": self.publishes,
            }

    def __repr__(self) -> str:
        return (
            f"ContextStore(prototypes={len(self._prototypes)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
