"""The sharded serving router: one stateless front, N worker tiers.

One :class:`~repro.serving.DrillDownServer` process tops out at what
one address space holds — its shared-memory exports, its counting
pool, its GIL.  The :class:`ShardRouter` is the ROADMAP's next step
("sharding catalogs across processes behind a router"): it spawns N
worker processes, each a *complete* serving tier
(:mod:`repro.serving.shard`), and routes the same facade API over a
length-prefixed JSON pipe protocol.  The router itself holds no
session state beyond two maps — which is the point:

* **Table placement** is consistent hashing over the table *name*
  (sha1-based, stable across restarts and router instances), so a
  table's catalog entry, pool export, context prototypes, and every
  session over it live together on one shard, and re-registering after
  any restart lands on the same shard — which is what lines warm
  restore up with each shard's own ``persist_dir`` subdirectory.
* **Session affinity** is sticky by construction: a session is created
  on its table's shard and addressed there for life.  Shards stamp
  their sessions with per-shard id prefixes (``s0-000001``), so ids
  are globally unique and the affinity map can never alias.
* **Crash handling**: a broken pipe marks the shard down; the router
  restarts it immediately, re-registers its tables (which warm-restores
  every snapshotted session from the shard's own persist directory),
  and raises :class:`~repro.errors.ShardDownError` (HTTP 503) for the
  request that observed the crash — never a silent retry, because the
  observed operation may have been half-applied.

Responses are **bit-identical** to a single-process
:class:`~repro.serving.DrillDownServer` serving the same workload:
the wire format round-trips every rule value, count, and weight
exactly, and each shard *is* an unmodified ``DrillDownServer``
(pinned by ``tests/serving/test_router.py`` and the multi-backend
replay harness in ``tests/integration/test_serving_fuzz.py``).
"""

from __future__ import annotations

import bisect
import hashlib
import os
import random
import threading
import time
from pathlib import Path

from repro.core.rule import Rule
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ServingError,
    ShardDownError,
    UnknownSessionError,
    UnknownTableError,
)
from repro.serving.faults import ChaosPolicy, CircuitBreaker, ShardWatchdog
from repro.serving.persistence import _SNAPSHOT_SUFFIX, _encode_value, encode_rule
from repro.serving.shard import (
    ShardBusyError,
    ShardProcess,
    ShardWedgedError,
    decode_node,
    encode_table,
)
from repro.session.session import SessionNode
from repro.table.table import Table

__all__ = ["ShardRouter"]

#: Ops safe to retry transparently after a shard restart: read-only and
#: idempotent — re-running them cannot double-apply anything.  Every
#: mutating op (``expand*``, ``collapse``, ``create_session``, ...) is
#: deliberately absent: it may have been half-applied when the shard
#: died, so the caller must observe the typed 503 and decide.
_RETRYABLE_OPS = frozenset({"render", "tree", "session_columns", "stats", "tables", "ping"})


def _stable_hash(key: str) -> int:
    """64-bit stable hash (``hash()`` is salted per process — useless
    for placement that must survive restarts)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class ShardRouter:
    """Route the serving facade across N shard worker processes.

    Implements the same surface the HTTP front end is written against
    (``register_table`` / ``create_session`` / ``expand`` /
    ``expand_star`` / ``expand_traditional`` / ``collapse`` /
    ``render`` / ``tree`` / ``close_session`` / ``stats`` / ...), so
    ``serve(ShardRouter(...))`` and ``serve(DrillDownServer(...))``
    are interchangeable.

    Parameters
    ----------
    n_shards:
        Worker-process count.  ``1`` is a legitimate deployment (it
        moves serving out of the caller's process) and the equivalence
        baseline the tests lean on.
    n_workers, max_sessions, ttl_seconds, tenant_budget,
    refill_per_second, share_contexts, max_context_prototypes,
    sample_budget, sample_seed, default_approx, default_error_target,
    checkpoint_interval, reaper_interval:
        Forwarded to every shard's :class:`DrillDownServer` — i.e.
        *per shard*: budgets meter a tenant per shard, ``max_sessions``
        caps each shard.  Samples (``sample_budget``) are rebuilt by
        each shard from its wire-decoded table with the same derived
        seed, so every shard serves bit-identical samples.
    persist_dir:
        Root of the durable state; each shard owns
        ``<persist_dir>/shard-NN``.  Re-create a router with the same
        directory and shard count, re-register the same tables, and
        every snapshotted session warm-restores on its original shard
        under its original id.  (A *different* shard count re-places
        tables, so snapshots written under the old placement stay
        pending on disk — skipped, never corrupted.)
    virtual_nodes:
        Points per shard on the consistent-hash ring (placement
        granularity; the default spreads tables evenly from a handful
        of names up).
    start_timeout:
        Seconds to wait for a worker to come up before declaring the
        spawn failed.
    default_deadline:
        Per-request deadline (seconds) applied when the caller passes
        none.  Bounds lock wait + pipe wait on every data-plane op;
        control-plane ops (table registration's warm restore,
        checkpointing, reaping) are exempt.  ``None`` (default) keeps
        requests unbounded.
    watchdog_interval:
        Start a :class:`~repro.serving.faults.ShardWatchdog` calling
        :meth:`probe_shards` every this-many seconds; ``None``
        (default) runs no watchdog (tests call ``probe_shards``
        directly).
    probe_timeout, wedge_timeout:
        Watchdog budgets: seconds a health ``ping`` may take, and
        seconds a shard may sit busy on one request before it is
        declared wedged and killed.
    breaker_threshold, breaker_cooldown:
        Per-shard circuit breaker: consecutive transport failures
        before the circuit opens, and seconds it stays open before
        admitting a half-open probe.
    read_retries, retry_backoff, retry_seed:
        Transparent retry budget for *idempotent read-only* ops (see
        :data:`_RETRYABLE_OPS`) after a shard restart, behind jittered
        exponential backoff.  Default ``0``: every failure surfaces as
        its typed error.
    clock:
        Injectable monotonic clock for the breakers (tests drive
        cooldowns deterministically).
    """

    def __init__(
        self,
        n_shards: int = 2,
        *,
        n_workers: int | None = None,
        max_sessions: int | None = 64,
        ttl_seconds: float | None = None,
        tenant_budget: float | None = None,
        refill_per_second: float = 0.0,
        share_contexts: bool = True,
        max_context_prototypes: int | None = None,
        sample_budget: int | None = None,
        sample_seed: int = 0,
        default_approx: bool = False,
        default_error_target: float = 0.1,
        marginal_cache: bool = True,
        marginal_mw: float = 5.0,
        marginal_weightings: tuple = ("size",),
        marginal_pairs: int = 0,
        persist_dir: str | os.PathLike | None = None,
        persist_max_bytes: int | None = None,
        checkpoint_interval: float | None = None,
        reaper_interval: float | None = None,
        virtual_nodes: int = 64,
        start_timeout: float = 60.0,
        default_deadline: float | None = None,
        watchdog_interval: float | None = None,
        probe_timeout: float = 5.0,
        wedge_timeout: float = 30.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
        read_retries: int = 0,
        retry_backoff: float = 0.05,
        retry_seed: int | None = None,
        clock=time.monotonic,
    ):
        if n_shards < 1:
            raise ServingError("a sharded tier needs at least 1 shard")
        if virtual_nodes < 1:
            raise ServingError("virtual_nodes must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ServingError("default_deadline must be > 0 seconds (or None)")
        if read_retries < 0:
            raise ServingError("read_retries must be >= 0")
        self.n_shards = n_shards
        self._persist_dir = None if persist_dir is None else Path(persist_dir)
        self._start_timeout = start_timeout
        self._default_deadline = default_deadline
        self._probe_timeout = probe_timeout
        self._wedge_timeout = wedge_timeout
        self._read_retries = int(read_retries)
        self._retry_backoff = retry_backoff
        self._retry_rng = random.Random(retry_seed)
        self._clock = clock
        self._breakers = [
            CircuitBreaker(
                threshold=breaker_threshold,
                cooldown=breaker_cooldown,
                clock=clock,
                name=f"shard-{index}",
            )
            for index in range(n_shards)
        ]
        self.deadline_aborts = 0
        self.wedge_kills = 0
        self.watchdog: ShardWatchdog | None = None
        self._base_kwargs = dict(
            n_workers=n_workers,
            max_sessions=max_sessions,
            ttl_seconds=ttl_seconds,
            tenant_budget=tenant_budget,
            refill_per_second=refill_per_second,
            share_contexts=share_contexts,
            max_context_prototypes=max_context_prototypes,
            sample_budget=sample_budget,
            sample_seed=sample_seed,
            default_approx=default_approx,
            default_error_target=default_error_target,
            marginal_cache=marginal_cache,
            marginal_mw=marginal_mw,
            marginal_weightings=tuple(marginal_weightings),
            marginal_pairs=marginal_pairs,
            persist_max_bytes=persist_max_bytes,
            checkpoint_interval=checkpoint_interval,
            reaper_interval=reaper_interval,
        )
        # The ring: sorted (point, shard) pairs; a table lands on the
        # first point at or after its own hash (wrapping).
        self._ring = sorted(
            (_stable_hash(f"shard-{index}/vnode-{vnode}"), index)
            for index in range(n_shards)
            for vnode in range(virtual_nodes)
        )
        self._ring_points = [point for point, _ in self._ring]
        # Routing state.  _tables keeps the live Table (identity for
        # idempotent re-registration, columns for the HTTP layer) and
        # its wire encoding (re-sent verbatim when a shard restarts).
        self._lock = threading.RLock()
        self._tables: dict[str, tuple[Table, dict]] = {}
        self._table_versions: dict[str, int] = {}
        self._sessions: dict[str, tuple[int, str]] = {}
        self._closed = False
        self.restarts = 0
        # Snapshots written under a *different* shard count live in
        # ``shard-NN`` directories no current slot owns.  They are
        # inert (placement changed, so no shard will ever restore
        # them); with a byte cap configured they are swept here, under
        # the same policy that compacts live snapshot directories.
        self.orphaned_swept = 0
        if self._persist_dir is not None and persist_max_bytes is not None:
            for path in self._orphaned_snapshot_files():
                try:
                    path.unlink()
                    self.orphaned_swept += 1
                except OSError:  # pragma: no cover - unlink race
                    pass
        # Per-slot incarnation counter, baked into the shard's session
        # id prefix: a restarted shard's *fresh* registry must never
        # re-issue an id a client may still hold from before the crash
        # (restored ids keep their original prefix — admit() takes the
        # id verbatim — so warm restore is unaffected).
        self._generations = [0] * n_shards
        # True while a slot's replacement worker is being spawned —
        # requests racing the respawn fail fast instead of piling a
        # second restart (or a 60 s wait) on top of the first.
        self._recovering = [False] * n_shards
        self._shards: list[ShardProcess] = []
        try:
            for index in range(n_shards):
                self._shards.append(self._spawn(index))
        except BaseException:
            self.close()
            raise
        if watchdog_interval is not None:
            self.watchdog = ShardWatchdog(
                probe=self.probe_shards, interval=watchdog_interval
            )
            self.watchdog.start()

    # -- shard lifecycle ---------------------------------------------------------

    def _orphaned_snapshot_files(self) -> list[Path]:
        """Snapshot files under ``shard-NN`` directories no current
        slot owns (``NN >= n_shards`` — leftovers from a run with a
        different shard count).  No shard will ever restore these: the
        tables they name now place on other slots."""
        if self._persist_dir is None or not self._persist_dir.is_dir():
            return []
        orphaned: list[Path] = []
        for child in sorted(self._persist_dir.glob("shard-*")):
            if not child.is_dir():
                continue
            try:
                index = int(child.name.split("-", 1)[1])
            except ValueError:
                continue
            if index >= self.n_shards:
                orphaned.extend(sorted(child.glob(f"*{_SNAPSHOT_SUFFIX}")))
        return orphaned

    def _shard_kwargs(self, index: int) -> dict:
        kwargs = dict(self._base_kwargs)
        generation = self._generations[index]
        kwargs["session_id_prefix"] = (
            f"s{index}" if generation == 0 else f"s{index}r{generation}"
        )
        if self._persist_dir is not None:
            kwargs["persist_dir"] = str(self._persist_dir / f"shard-{index:02d}")
        return kwargs

    def _spawn(self, index: int, *, respawn: bool = False) -> ShardProcess:
        # Respawns run on a request thread of a live (often threaded
        # HTTP) process: fork there can capture another thread's held
        # locks in the child and hang it, so recovery workers start via
        # spawn.  Construction-time workers keep the cheap fork.
        return ShardProcess(
            index,
            self._shard_kwargs(index),
            start_timeout=self._start_timeout,
            start_method="spawn" if respawn else None,
        )

    def _recover_slot(
        self, shard: ShardProcess, generation: int, *, wedged: bool = False
    ) -> bool:
        """Restart a dead or wedged shard slot; first observer wins.

        ``generation`` is the slot generation the caller captured when
        it picked ``shard`` up.  A stale observer — the slot was already
        recovered (or is mid-recovery) since the capture — returns
        ``False`` without touching anything, so one underlying failure
        seen by many request threads (or by a request racing the
        watchdog) can never stack a second restart on the first.  With
        ``wedged=True`` the worker process is still running but
        unresponsive, so it is SIGKILLed before the reap.

        The spawn runs *outside* the router lock so healthy shards keep
        serving; the replacement then re-registers this slot's tables,
        warm-restoring every snapshotted session.  Returns ``True``
        when *this* call performed the restart.  Never raises — each
        caller surfaces its own typed error for the request that
        observed the failure.
        """
        with self._lock:
            first = (
                not self._closed
                and self._shards[shard.index] is shard
                and self._generations[shard.index] == generation
                and not self._recovering[shard.index]
            )
            if first:
                self.restarts += 1
                self._generations[shard.index] += 1
                self._recovering[shard.index] = True
                # Sessions pinned to the dead shard are gone unless the
                # re-registration below restores them from its store.
                for sid in [
                    sid
                    for sid, (index, _table) in self._sessions.items()
                    if index == shard.index
                ]:
                    del self._sessions[sid]
        if not first:
            return False
        # Reap outside the router lock: a wedged worker is killed first
        # (reap's polite terminate would wait on a process that is busy
        # ignoring us), and join/close may block briefly.
        if wedged:
            shard.kill()
        shard.reap()
        replacement = None
        try:
            replacement = self._spawn(shard.index, respawn=True)
        except Exception:
            pass  # slot keeps the reaped handle; next request retries
        try:
            if replacement is not None:
                with self._lock:
                    if self._closed:
                        replacement, doomed = None, replacement
                    else:
                        self._shards[shard.index] = replacement
                        doomed = None
                if doomed is not None:
                    doomed.stop()
            if replacement is not None:
                self._reregister(replacement)
        finally:
            with self._lock:
                self._recovering[shard.index] = False
        return True

    def _reregister(self, shard: ShardProcess) -> None:
        """Replay the dead shard's table registrations into its
        replacement; adopts every session the shard restored from its
        persist directory.  Runs outside the router lock — the shard's
        own request lock serialises the pipe."""
        with self._lock:
            owned = [
                (name, encoded)
                for name, (_table, encoded) in self._tables.items()
                if self._placement(name) == shard.index
            ]
        for name, encoded in owned:
            try:
                result = shard.request("register_table", {"name": name, "table": encoded})
            except (OSError, EOFError):  # pragma: no cover - double crash
                return
            except ServingError:  # pragma: no cover - one bad table
                continue  # must not cost the shard its other tables
            with self._lock:
                for sid, table_name, _version in result.get("sessions", ()):
                    self._sessions.setdefault(sid, (shard.index, table_name))

    # -- placement ---------------------------------------------------------------

    def _placement(self, table_name: str) -> int:
        """The shard index owning ``table_name`` (consistent hash)."""
        point = _stable_hash(f"table/{table_name}")
        at = bisect.bisect_left(self._ring_points, point)
        if at == len(self._ring):
            at = 0
        return self._ring[at][1]

    def shard_of_table(self, table_name: str) -> int:
        """Public placement probe (ops tooling, tests)."""
        return self._placement(table_name)

    def shard_of_session(self, session_id: str) -> int:
        """The shard currently pinned for a live session id."""
        return self._session_shard(session_id)[0].index

    def _shard(self, index: int) -> ShardProcess:
        with self._lock:
            if self._closed:
                raise ServingError("router is closed")
            return self._shards[index]

    def _session_shard(self, session_id: str) -> tuple[ShardProcess, str]:
        with self._lock:
            if self._closed:
                raise ServingError("router is closed")
            try:
                index, table_name = self._sessions[session_id]
            except KeyError:
                raise UnknownSessionError(
                    f"no live session {session_id!r} (unknown, closed, expired, "
                    "or evicted — create a new session)"
                ) from None
            return self._shards[index], table_name

    # -- the request spine -------------------------------------------------------

    def _request(
        self,
        shard: ShardProcess,
        op: str,
        args: dict | None = None,
        *,
        deadline: float | None = None,
        use_default: bool = True,
    ):
        """One breaker-guarded, deadline-bounded pipe round trip.

        The exception ladder is the fault-tolerance contract:

        * circuit open → :class:`~repro.errors.CircuitOpenError`
          immediately (no pipe traffic; ``retry_after`` = remaining
          cooldown);
        * shard busy past the deadline (request never sent) →
          :class:`~repro.errors.DeadlineExceededError`, breaker *not*
          charged — saturation is not sickness;
        * shard wedged past the deadline (request sent, no reply) →
          kill + restart, then ``DeadlineExceededError``;
        * typed application error from the shard → breaker *success*
          (the pipe answered; the worker is healthy) and re-raise;
        * broken pipe / EOF → restart, then
          :class:`~repro.errors.ShardDownError`.

        ``use_default=False`` exempts control-plane ops
        (``register_table`` warm restore, ``checkpoint_all``, ...) from
        the tier's default deadline — recovery work must not be cut
        short by a knob sized for interactive requests.
        """
        breaker = self._breakers[shard.index]
        breaker.acquire()
        if deadline is None and use_default:
            deadline = self._default_deadline
        with self._lock:
            generation = self._generations[shard.index]
        try:
            result = shard.request(op, args, timeout=deadline)
        except ShardBusyError as exc:
            # The shard's request lock stayed held for the whole
            # deadline: the request was never sent, the handle stays
            # usable, and a half-open probe slot (if we held one) is
            # returned rather than spent on an inconclusive outcome.
            breaker.cancel_probe()
            self.deadline_aborts += 1
            raise DeadlineExceededError(
                f"shard {shard.index} was busy past the {deadline}s deadline "
                f"for {op!r} — the request was never sent",
                retry_after=1.0,
            ) from exc
        except ShardWedgedError as exc:
            breaker.record_failure()
            self.deadline_aborts += 1
            self.wedge_kills += 1
            self._recover_slot(shard, generation, wedged=True)
            raise DeadlineExceededError(
                f"shard {shard.index} did not answer {op!r} within the "
                f"{deadline}s deadline; the wedged worker was killed and "
                "restarted (snapshotted sessions warm-restored)",
                retry_after=1.0,
            ) from exc
        except ReproError:
            breaker.record_success()  # the pipe answered — shard is healthy
            raise
        except (OSError, EOFError) as exc:
            breaker.record_failure()
            self._recover_slot(shard, generation)
            raise ShardDownError(
                f"shard {shard.index} died serving {op!r}; it has been "
                "restarted (snapshotted sessions warm-restored) — retry the "
                "request"
            ) from exc
        breaker.record_success()
        return result

    def _session_request(
        self, session_id: str, op: str, args: dict, *, deadline: float | None = None
    ):
        """Route ``op`` to the session's shard, optionally retrying.

        Only ops in :data:`_RETRYABLE_OPS` are ever retried, and only
        when ``read_retries > 0`` was configured: after a
        :class:`ShardDownError` the loop re-resolves the shard (the
        slot now holds the restarted worker) and retries behind a
        jittered exponential backoff.  Deadline and circuit-open
        failures are never retried — both mean "come back later", and
        retrying would spend the caller's remaining patience on a
        shard that already said no.
        """
        attempts = 1 + (self._read_retries if op in _RETRYABLE_OPS else 0)
        last: ShardDownError | None = None
        for attempt in range(attempts):
            if attempt:
                backoff = self._retry_backoff * (2 ** (attempt - 1))
                time.sleep(backoff * (0.5 + self._retry_rng.random() / 2.0))
            shard, _table = self._session_shard(session_id)
            try:
                return self._request(shard, op, args, deadline=deadline)
            except (DeadlineExceededError, CircuitOpenError):
                raise
            except UnknownSessionError:
                # The shard expired/evicted it; drop the stale pin so
                # the router's own map cannot grow without bound.
                with self._lock:
                    self._sessions.pop(session_id, None)
                raise
            except ShardDownError as exc:
                last = exc
        assert last is not None
        raise last

    # -- watchdog & chaos --------------------------------------------------------

    def probe_shards(self) -> list[int]:
        """One watchdog sweep: health-probe every shard, recover the sick.

        Detects three failure shapes: a slot left holding a reaped
        handle (an earlier respawn failed — retried here), a worker
        wedged mid-request past ``wedge_timeout`` (killed outright, so
        deadline-less traffic gets coverage too), and a worker whose
        pipe broke or that misses the ``ping`` within
        ``probe_timeout``.  A shard that is merely *busy* — request
        lock held, but not past the wedge budget — is skipped: load is
        not sickness.  Returns the indices this sweep recovered.
        Driven periodically by :class:`ShardWatchdog` when the router
        was built with ``watchdog_interval``; callable directly for
        deterministic tests.
        """
        recovered: list[int] = []
        for index in range(self.n_shards):
            with self._lock:
                if self._closed:
                    return recovered
                if self._recovering[index]:
                    continue
                shard = self._shards[index]
                generation = self._generations[index]
            if shard._reaped:
                if self._recover_slot(shard, generation):
                    recovered.append(index)
                continue
            busy_since = shard.busy_since
            if busy_since is not None and (
                # repro-lint: allow[clock-discipline] reason=the watchdog measures real pipe stall time against busy_since stamps from another thread
                time.monotonic() - busy_since > self._wedge_timeout
            ):
                self._breakers[index].record_failure()
                self.wedge_kills += 1
                if self._recover_slot(shard, generation, wedged=True):
                    recovered.append(index)
                continue
            try:
                shard.request("ping", {}, timeout=self._probe_timeout)
            except ShardBusyError:
                continue  # busy, not sick — the wedge clock above decides
            except ShardWedgedError:
                self._breakers[index].record_failure()
                self.wedge_kills += 1
                if self._recover_slot(shard, generation, wedged=True):
                    recovered.append(index)
            except (OSError, EOFError):
                self._breakers[index].record_failure()
                if self._recover_slot(shard, generation):
                    recovered.append(index)
            else:
                # A live answer is direct evidence of health: reset the
                # breaker so recovery isn't gated on client traffic.
                self._breakers[index].record_success()
        return recovered

    def inject_chaos(self, shard_index: int, rules) -> int:
        """Install chaos rules on one shard worker; ``[]`` clears.

        ``rules`` is a :class:`~repro.serving.faults.ChaosPolicy` or a
        list of :class:`~repro.serving.faults.ChaosRule` / dicts.
        Returns the number of rules now active worker-side.  Test and
        drill tooling only — production traffic never goes near this.
        """
        shard = self._shard(shard_index)
        if isinstance(rules, ChaosPolicy):
            policy: ChaosPolicy | None = rules
        else:
            policy = ChaosPolicy(rules) if rules else None
        return shard.install_chaos(policy)

    # -- tables ------------------------------------------------------------------

    def register_table(self, name: str, table: Table) -> Table:
        """Register ``table`` on its consistent-hash shard.

        Mirrors :meth:`DrillDownServer.register_table`, including the
        warm-restart contract: with ``persist_dir``, registration
        triggers the owning shard's restore of every pending snapshot
        naming ``name``, and the router adopts the restored ids into
        its affinity map.
        """
        with self._lock:
            if self._closed:
                raise ServingError("router is closed")
            held = self._tables.get(name)
            if held is not None and held[0] is table:
                return table  # same-object re-registration is a no-op
        encoded = encode_table(table)
        shard = self._shard(self._placement(name))
        result = self._request(
            shard,
            "register_table",
            {"name": name, "table": encoded},
            use_default=False,  # warm restore may legitimately run long
        )
        with self._lock:
            self._tables[name] = (table, encoded)
            self._table_versions[name] = int(result.get("version", 1))
            for sid, table_name, _version in result.get("sessions", ()):
                self._sessions.setdefault(sid, (shard.index, table_name))
        return table

    def append_rows(self, name: str, rows) -> dict:
        """Append ``rows`` to ``name`` on its owning shard (a new table
        version; see :meth:`DrillDownServer.append_rows`).

        The router mirrors the append locally with the same
        deterministic :meth:`Table.append_rows`, so the ``(table,
        encoding)`` it would replay into a restarted shard stays
        current — a crash after an append warm-restores the *appended*
        table, and pre-append snapshots restore pinned to it only if
        their own version was reaped (they re-pin the latest, exactly
        like a single-process restart).

        Deliberately **not** retryable: an append observed by a shard
        crash may have been applied, and re-sending it would
        double-append.
        """
        with self._lock:
            if self._closed:
                raise ServingError("router is closed")
            held = self._tables.get(name)
        if held is None:
            raise UnknownTableError(
                f"no table {name!r} is registered (register it first)"
            )
        normalized = [tuple(row) for row in rows]
        encoded_rows = [[_encode_value(v) for v in row] for row in normalized]
        shard = self._shard(self._placement(name))
        result = self._request(
            shard, "append_rows", {"name": name, "rows": encoded_rows}, use_default=False
        )
        new_table = held[0].append_rows(normalized)
        with self._lock:
            # Lost-update guard: only advance the mirror if nobody
            # re-registered/replaced the table while the pipe was busy.
            if self._tables.get(name, (None,))[0] is held[0]:
                self._tables[name] = (new_table, encode_table(new_table))
                self._table_versions[name] = int(result["version"])
        return result

    def replace_table(self, name: str, table: Table) -> dict:
        """Swap in ``table`` as a new version of ``name`` (see
        :meth:`DrillDownServer.replace_table`)."""
        with self._lock:
            if self._closed:
                raise ServingError("router is closed")
        encoded = encode_table(table)
        shard = self._shard(self._placement(name))
        result = self._request(
            shard, "replace_table", {"name": name, "table": encoded}, use_default=False
        )
        with self._lock:
            self._tables[name] = (table, encoded)
            self._table_versions[name] = int(result["version"])
        return result

    def unregister_table(self, name: str) -> None:
        with self._lock:
            if name not in self._tables:
                return
        shard = self._shard(self._placement(name))
        self._request(shard, "unregister_table", {"name": name}, use_default=False)
        with self._lock:
            self._tables.pop(name, None)
            self._table_versions.pop(name, None)

    def tables(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tables))

    # -- sessions ----------------------------------------------------------------

    def create_session(
        self,
        table: str,
        *,
        tenant: str = "default",
        wf: str = "size",
        k: int = 3,
        mw: float = 5.0,
        measure: str | None = None,
        deadline: float | None = None,
    ) -> str:
        """Open a session on the shard owning ``table``; sticky for life."""
        shard = self._shard(self._placement(table))
        result = self._request(
            shard,
            "create_session",
            {"table": table, "tenant": tenant, "wf": wf, "k": k, "mw": mw, "measure": measure},
            deadline=deadline,
        )
        session_id = result["session_id"]
        with self._lock:
            self._sessions[session_id] = (shard.index, table)
        return session_id

    def session_columns(
        self, session_id: str, *, deadline: float | None = None
    ) -> tuple[str, ...]:
        """Column names for a live session — answered from the router's
        own maps, no pipe round trip."""
        _shard, table_name = self._session_shard(session_id)
        with self._lock:
            held = self._tables.get(table_name)
        if held is not None:
            return held[0].column_names
        # Restored session over a table this router never held (e.g.
        # registered by a previous incarnation): ask the shard.
        result = self._session_request(
            session_id, "session_columns", {"session_id": session_id}, deadline=deadline
        )
        return tuple(result["columns"])

    def close_session(self, session_id: str) -> bool:
        try:
            shard, _table = self._session_shard(session_id)
        except UnknownSessionError:
            return False
        try:
            result = self._request(shard, "close_session", {"session_id": session_id})
        except UnknownSessionError:
            return False  # the shard already expired/evicted it
        finally:
            with self._lock:
                self._sessions.pop(session_id, None)
        return bool(result["closed"])

    # -- operations --------------------------------------------------------------

    def _decode_children(self, result: dict) -> list[SessionNode]:
        return [decode_node(c) for c in result["children"]]

    def expand(
        self,
        session_id: str,
        rule: Rule | None = None,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
        deadline: float | None = None,
    ) -> list[SessionNode]:
        result = self._session_request(
            session_id,
            "expand",
            {
                "session_id": session_id,
                "rule": None if rule is None else encode_rule(rule),
                "k": k,
                "approx": approx,
                "error_target": error_target,
            },
            deadline=deadline,
        )
        return self._decode_children(result)

    def expand_star(
        self,
        session_id: str,
        rule: Rule,
        column: int | str,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
        deadline: float | None = None,
    ) -> list[SessionNode]:
        result = self._session_request(
            session_id,
            "expand_star",
            {
                "session_id": session_id,
                "rule": encode_rule(rule),
                "column": column,
                "k": k,
                "approx": approx,
                "error_target": error_target,
            },
            deadline=deadline,
        )
        return self._decode_children(result)

    def expand_traditional(
        self,
        session_id: str,
        rule: Rule,
        column: int | str,
        *,
        k: int | None = None,
        approx: bool | None = None,
        error_target: float | None = None,
        deadline: float | None = None,
    ) -> list[SessionNode]:
        result = self._session_request(
            session_id,
            "expand_traditional",
            {
                "session_id": session_id,
                "rule": encode_rule(rule),
                "column": column,
                "k": k,
                "approx": approx,
                "error_target": error_target,
            },
            deadline=deadline,
        )
        return self._decode_children(result)

    def collapse(
        self, session_id: str, rule: Rule, *, deadline: float | None = None
    ) -> None:
        self._session_request(
            session_id,
            "collapse",
            {"session_id": session_id, "rule": encode_rule(rule)},
            deadline=deadline,
        )

    def render(
        self,
        session_id: str,
        *,
        sort_display_by_count: bool = False,
        deadline: float | None = None,
    ) -> str:
        result = self._session_request(
            session_id,
            "render",
            {"session_id": session_id, "sort_display_by_count": sort_display_by_count},
            deadline=deadline,
        )
        return result["text"]

    def tree(self, session_id: str, *, deadline: float | None = None) -> SessionNode:
        result = self._session_request(
            session_id, "tree", {"session_id": session_id}, deadline=deadline
        )
        return decode_node(result["root"])

    # -- maintenance -------------------------------------------------------------

    def checkpoint_all(self, *, only_dirty: bool = True) -> int:
        """Snapshot dirty sessions on every shard; total files written."""
        written = 0
        for index in range(self.n_shards):
            shard = self._shard(index)
            try:
                result = self._request(
                    shard, "checkpoint_all", {"only_dirty": only_dirty}, use_default=False
                )
            except ShardDownError:
                continue  # restarted; its sessions were just restored clean
            written += int(result["written"])
        return written

    def reap(self) -> list[str]:
        """TTL-expire idle sessions on every shard; evicted ids."""
        evicted: list[str] = []
        for index in range(self.n_shards):
            shard = self._shard(index)
            try:
                result = self._request(shard, "reap", {}, use_default=False)
            except ShardDownError:
                continue
            evicted.extend(result["evicted"])
        if evicted:
            with self._lock:
                for sid in evicted:
                    self._sessions.pop(sid, None)
        return evicted

    # -- introspection / lifecycle -----------------------------------------------

    def stats(self) -> dict:
        """Tier-wide stats with a per-shard breakdown.

        Shard entries embed each worker's own
        :meth:`DrillDownServer.stats` untouched; a shard that dies
        while being asked reports ``alive: False`` for this call (and
        has already been restarted by the time the caller reads it).
        """
        with self._lock:
            placement = {name: self._placement(name) for name in self._tables}
            versions = dict(self._table_versions)
            session_count = len(self._sessions)
        shards = []
        for index in range(self.n_shards):
            shard = self._shard(index)
            entry: dict = {"shard": index, "pid": shard.pid, "alive": True}
            try:
                entry["server"] = self._request(shard, "stats", {})
            except (ShardDownError, DeadlineExceededError) as exc:
                entry["alive"] = False
                entry["error"] = str(exc)
            entry["breaker"] = self._breakers[index].stats()
            shards.append(entry)
        return {
            "tables": list(self.tables()),
            "sessions": session_count,
            "router": {
                "n_shards": self.n_shards,
                "restarts": self.restarts,
                "placement": placement,
                "table_versions": versions,
                "orphaned_snapshots": len(self._orphaned_snapshot_files()),
                "orphaned_swept": self.orphaned_swept,
                "default_deadline": self._default_deadline,
                "deadline_aborts": self.deadline_aborts,
                "wedge_kills": self.wedge_kills,
                "watchdog": None if self.watchdog is None else self.watchdog.stats(),
            },
            "shards": shards,
        }

    def close(self) -> None:
        """Shut every shard down gracefully (each worker closes its
        server, checkpointing dirty sessions when durable).  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards, self._shards = self._shards, []
            self._sessions.clear()
            self._tables.clear()
            self._table_versions.clear()
        if self.watchdog is not None:
            self.watchdog.stop()
        for shard in shards:
            shard.stop()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ShardRouter(shards={self.n_shards}, tables={len(self._tables)}, "
                f"sessions={len(self._sessions)}, restarts={self.restarts}, "
                f"closed={self._closed})"
            )
