"""The table catalog: register immutable tables once, export them once.

A :class:`TableCatalog` is the serving tier's source of truth for
tables.  Tenants refer to tables by name; the catalog holds the
:class:`~repro.table.Table` objects (keeping them — and therefore
their shared-memory exports — alive for as long as they are served)
and owns the one :class:`~repro.core.parallel.CountingPool` every
tenant session counts through.

Registration is the only moment a table's data moves: with a usable
pool, :meth:`TableCatalog.register` eagerly places the table's
dictionary-encoded code arrays and measures into the pool's shared
immutable region, so the first tenant's first expansion pays no export
cost and the hundredth tenant shares the same bytes.  Tables are
immutable (`Table` has no mutating API), which is what makes one
export safe to serve to everyone.

Ownership: the catalog owns a pool it *created* (``n_workers=``) and
closes it — terminating workers and unlinking every export — in
:meth:`TableCatalog.close`; a pool passed in via ``pool=`` is borrowed
and left running.  Individual sessions never close the catalog's pool
(see :mod:`repro.session.session`).
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.core.first_pick import FirstPickCache, build_first_pick_cache
from repro.core.parallel import CountingPool
from repro.core.weights import (
    BitsWeight,
    SizeMinusOneWeight,
    SizeWeight,
    WeightFunction,
)
from repro.errors import ServingError, UnknownTableError
from repro.serving.marginals import (
    load_first_pick,
    save_first_pick,
    table_fingerprint,
)
from repro.serving.samples import (
    TableSampleSet,
    build_sample_set,
    derive_seed,
    load_sample_set,
)
from repro.table.table import Table

__all__ = ["TableCatalog", "WEIGHT_FUNCTIONS"]

#: Weight functions creatable by name over the wire.  Factories take
#: the served table — Bits weighting derives per-column bit counts
#: from the table's dictionary sizes (§2.2).  Lives on the catalog so
#: registration-time precompute (first-pick marginals) resolves the
#: *same* instances tenant sessions later key contexts on;
#: :mod:`repro.serving.server` re-exports it for compatibility.
WEIGHT_FUNCTIONS: dict[str, Callable[[Table], WeightFunction]] = {
    "size": lambda table: SizeWeight(),
    "bits": BitsWeight.for_table,
    "size_minus_one": lambda table: SizeMinusOneWeight(),
}

_SAMPLE_FILE_SAFE = re.compile(r"[^A-Za-z0-9._-]")


class TableCatalog:
    """Named registry of immutable tables over one shared counting pool.

    Parameters
    ----------
    pool:
        An existing :class:`~repro.core.parallel.CountingPool` to serve
        every registered table through (borrowed — not closed by
        :meth:`close`).
    n_workers:
        When no ``pool`` is given: ``None``/``1`` serves serially (no
        pool, no exports), ``0`` builds a catalog-owned pool over every
        core, ``>= 2`` over that many workers.  A catalog-owned pool is
        closed by :meth:`close`.
    sample_budget:
        When set (> 0), :meth:`register` also pre-builds a
        :class:`~repro.serving.TableSampleSet` for the table — uniform
        + per-column stratified samples totalling this many tuples,
        split by the §4.1 allocation DP — and exports the sample
        tables to the pool alongside the exact arrays.  Approximate
        expansions then mine these samples (:meth:`samples_for`).
    sample_seed:
        Base seed for sample draws; each table's effective seed is
        :func:`~repro.serving.samples.derive_seed` of its name, so
        rebuilds in other processes reproduce the same samples.
    sample_dir:
        Directory to persist sample row ids under (atomic writes).  On
        re-registration after a restart the catalog reloads matching
        files instead of re-scanning and re-drawing; any fingerprint
        mismatch (rows, budget, seed) triggers a rebuild + re-persist.
    marginal_mw:
        When set, :meth:`register` also precomputes the shared
        first-pick marginal cache
        (:class:`~repro.core.first_pick.FirstPickCache`) for each
        ``marginal_weightings`` entry at this ``mw`` — the level-1
        count/marginal vectors every cold session's first pick scans
        for.  Sessions whose ``(table, weighting, mw)`` matches get the
        cache read-only via :meth:`marginals_for`; everything else
        falls back to the normal scan.  ``None`` (default) disables
        the cache.
    marginal_weightings:
        Weighting names (keys of :data:`WEIGHT_FUNCTIONS`) to
        precompute marginals for; each costs one level-1 pass over the
        table at registration.
    marginal_dir:
        Directory to persist marginal caches under (atomic writes,
        fingerprint-checked like ``sample_dir``): stale or corrupt
        files are rejected — with a counter — and rebuilt, never
        served.
    marginal_pairs, marginal_pair_threshold:
        Bound the optional level-2 cache: at most ``marginal_pairs``
        hot column pairs per cache (0 disables level 2), a pair
        becoming hot after ``marginal_pair_threshold`` observed cold
        expansions.
    """

    def __init__(
        self,
        *,
        pool: CountingPool | None = None,
        n_workers: int | None = None,
        sample_budget: int | None = None,
        sample_seed: int = 0,
        sample_dir: str | os.PathLike | None = None,
        marginal_mw: float | None = None,
        marginal_weightings: Sequence[str] = ("size",),
        marginal_dir: str | os.PathLike | None = None,
        marginal_pairs: int = 0,
        marginal_pair_threshold: int = 2,
    ):
        if sample_budget is not None and sample_budget <= 0:
            raise ServingError("sample_budget must be a positive tuple count")
        self._sample_budget = sample_budget
        self._sample_seed = int(sample_seed)
        self._sample_dir = Path(sample_dir) if sample_dir is not None else None
        self._samples: dict[str, TableSampleSet] = {}
        self._samples_built = 0
        self._samples_loaded = 0
        if marginal_mw is not None and not float(marginal_mw) > 0:
            raise ServingError("marginal_mw must be > 0 (or None to disable)")
        unknown = [w for w in marginal_weightings if w not in WEIGHT_FUNCTIONS]
        if unknown:
            raise ServingError(
                f"unknown marginal weighting(s) {unknown!r}; "
                f"choose from {sorted(WEIGHT_FUNCTIONS)}"
            )
        self._marginal_mw = None if marginal_mw is None else float(marginal_mw)
        self._marginal_weightings = tuple(marginal_weightings)
        self._marginal_dir = Path(marginal_dir) if marginal_dir is not None else None
        self._marginal_pairs = int(marginal_pairs)
        self._marginal_pair_threshold = int(marginal_pair_threshold)
        self._marginals: dict[str, dict[str, FirstPickCache]] = {}
        self._marginals_built = 0
        self._marginals_loaded = 0
        self._marginals_rejected = 0
        # Weight-instance registry: one shared instance per (name,
        # table), so registration-time caches and tenant contexts key
        # on the same object.  Entries keep a strong table reference —
        # id() keys alone could be recycled by a new table allocated at
        # a dead table's address.
        self._weights: dict[tuple[str, int], tuple[Table, WeightFunction]] = {}
        self._weights_lock = threading.Lock()
        # SIGKILL mid-save leaves "<file>.tmp" litter in the persist
        # directories; sweep it now, exactly like SnapshotStore sweeps
        # its .jsonl.tmp-* files.
        self.cleaned_tmp = 0
        for directory in (self._sample_dir, self._marginal_dir):
            if directory is None or not directory.is_dir():
                continue
            for tmp in directory.glob("*.tmp"):
                try:
                    tmp.unlink()
                    self.cleaned_tmp += 1
                except OSError:  # pragma: no cover - racing cleaner
                    pass
        if pool is not None:
            self._pool: CountingPool | None = pool
            self._owns_pool = False
        elif n_workers is not None and n_workers != 1:
            # Not resolve_pool(): that returns the process-wide shared
            # default pool, and a catalog wants sole ownership.
            self._pool = CountingPool(n_workers)
            self._owns_pool = True
        else:
            self._pool = None
            self._owns_pool = False
        self._tables: dict[str, Table] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- registration ------------------------------------------------------------

    def register(self, name: str, table: Table) -> Table:
        """Register ``table`` under ``name`` and export it to the pool.

        Idempotent for the same object (re-registering the identical
        table is a no-op returning it); a *different* table under an
        existing name raises :class:`~repro.errors.ServingError` —
        served tables are immutable, replacement would invalidate every
        tenant's displayed counts.  The shared-memory export (when a
        usable pool exists and the table is large enough to benefit)
        happens here, once, so no tenant pays it later.
        """
        if not name:
            raise ServingError("table name must be non-empty")
        with self._lock:
            if self._closed:
                raise ServingError("table catalog is closed")
            existing = self._tables.get(name)
            if existing is not None:
                if existing is table:
                    return table
                raise ServingError(
                    f"table {name!r} is already registered with different data; "
                    "served tables are immutable — register under a new name"
                )
            self._tables[name] = table
        if self._pool is not None:
            # Eager export: backend_for creates (or reuses) the table's
            # shared region; the backend object itself is discarded.
            self._pool.backend_for(table)
        if self._sample_budget is not None:
            samples = self._build_or_load_samples(name, table)
            with self._lock:
                self._samples[name] = samples
            if self._pool is not None:
                # Approximate expansions mine the sample tables, so they
                # are exported alongside the exact arrays (small enough
                # that the pool may serve them serially anyway).
                for sample in samples.samples:
                    self._pool.backend_for(sample.table)
        if self._marginal_mw is not None:
            marginals = self._build_or_load_marginals(name, table)
            with self._lock:
                self._marginals[name] = marginals
        return table

    def _sample_path(self, name: str) -> Path | None:
        """Persistence path for ``name``'s samples (``None`` = memory only).

        The filename keeps a sanitised human-readable prefix plus a
        short digest of the exact name, so distinct names that sanitise
        identically (``"a/b"`` vs ``"a_b"``) cannot share a file.
        """
        if self._sample_dir is None:
            return None
        digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:8]
        safe = _SAMPLE_FILE_SAFE.sub("_", name)[:80]
        return self._sample_dir / f"{safe}-{digest}.samples.json"

    def _build_or_load_samples(self, name: str, table: Table) -> TableSampleSet:
        """Load persisted samples when the fingerprint matches, else
        build deterministically and (best-effort) persist."""
        assert self._sample_budget is not None
        seed = derive_seed(name, self._sample_seed)
        path = self._sample_path(name)
        if path is not None:
            loaded = load_sample_set(path, table, budget=self._sample_budget, seed=seed)
            if loaded is not None:
                self._samples_loaded += 1
                return loaded
        samples = build_sample_set(table, budget=self._sample_budget, seed=seed)
        self._samples_built += 1
        if path is not None:
            try:
                samples.save(path)
            except OSError:  # pragma: no cover - disk-full etc.
                pass  # samples are rebuildable; persistence is an optimisation
        return samples

    def _marginal_path(self, name: str, weighting: str) -> Path | None:
        """Persistence path for one ``(table name, weighting)`` cache."""
        if self._marginal_dir is None:
            return None
        digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:8]
        safe = _SAMPLE_FILE_SAFE.sub("_", name)[:80]
        return self._marginal_dir / f"{safe}-{digest}.{weighting}.marginals.json"

    def _build_or_load_marginals(
        self, name: str, table: Table
    ) -> dict[str, FirstPickCache]:
        """One first-pick cache per configured weighting.

        A persisted file is served only when its fingerprint — format
        version, table content hash, weighting name, ``mw``, row count
        — matches exactly; anything else (corrupt JSON, a re-registered
        table with different data, a knob change) is rejected with a
        counter and rebuilt.  Tables without categorical columns build
        no cache.
        """
        assert self._marginal_mw is not None
        fingerprint = table_fingerprint(table)
        caches: dict[str, FirstPickCache] = {}
        for weighting in self._marginal_weightings:
            wf = self.weight(weighting, table)
            path = self._marginal_path(name, weighting)
            if path is not None and path.exists():
                loaded = load_first_pick(
                    path,
                    table,
                    wf,
                    self._marginal_mw,
                    fingerprint=fingerprint,
                    weighting=weighting,
                    pair_limit=self._marginal_pairs,
                    pair_threshold=self._marginal_pair_threshold,
                )
                if loaded is not None:
                    self._marginals_loaded += 1
                    caches[weighting] = loaded
                    continue
                self._marginals_rejected += 1
            cache = build_first_pick_cache(
                table,
                wf,
                self._marginal_mw,
                pair_limit=self._marginal_pairs,
                pair_threshold=self._marginal_pair_threshold,
            )
            if cache is None:  # no categorical columns: nothing to serve
                continue
            self._marginals_built += 1
            caches[weighting] = cache
            if path is not None:
                try:
                    save_first_pick(
                        cache, path, fingerprint=fingerprint, weighting=weighting
                    )
                except OSError:  # pragma: no cover - disk-full etc.
                    pass  # caches are rebuildable; persistence is an optimisation
        return caches

    def marginals_for(
        self,
        name: str,
        wf: str | WeightFunction = "size",
        mw: float | None = None,
    ) -> FirstPickCache | None:
        """The first-pick cache valid for ``(name, wf, mw)``, or ``None``.

        ``wf`` may be a weighting name or a resolved instance; ``mw``
        of ``None`` skips the mw check (callers that will let the
        search validate).  Strict keying: any mismatch returns ``None``
        — the session then simply runs the cold scan.
        """
        with self._lock:
            per_table = self._marginals.get(name)
        if not per_table:
            return None
        if isinstance(wf, str):
            cache = per_table.get(wf)
        else:
            cache = next((c for c in per_table.values() if c.wf is wf), None)
        if cache is None:
            return None
        if mw is not None and float(mw) != cache.mw:
            return None
        return cache

    def marginal_stats(self) -> dict:
        """First-pick cache counters + per-cache summaries for ``/stats``."""
        with self._lock:
            tables = {
                name: {w: cache.describe() for w, cache in sorted(per.items())}
                for name, per in sorted(self._marginals.items())
            }
        return {
            "mw": self._marginal_mw,
            "weightings": list(self._marginal_weightings),
            "pair_limit": self._marginal_pairs,
            "built": self._marginals_built,
            "loaded": self._marginals_loaded,
            "rejected": self._marginals_rejected,
            "cleaned_tmp": self.cleaned_tmp,
            "tables": tables,
        }

    # -- weight registry ---------------------------------------------------------

    def weight(self, spec: str | WeightFunction, table: Table) -> WeightFunction:
        """Resolve a weighting name to this catalog's shared instance.

        Sharing instances is load-bearing twice over: the
        :class:`~repro.serving.ContextStore` keys weight functions by
        identity, and the first-pick marginal caches are valid only for
        the exact instance they were built with — so ``"size"`` must
        mean the *same* ``SizeWeight`` object for every tenant on a
        table.  Instances are cached per ``(name, table)`` — Bits
        weighting is genuinely table-derived, and neither consumer
        shares across tables anyway.  A :class:`WeightFunction`
        instance passes through unchanged (shared only if the caller
        reuses it).
        """
        if isinstance(spec, WeightFunction):
            return spec
        try:
            factory = WEIGHT_FUNCTIONS[spec]
        except KeyError:
            raise ServingError(
                f"unknown weight function {spec!r}; one of {sorted(WEIGHT_FUNCTIONS)}"
            ) from None
        key = (spec, id(table))
        with self._weights_lock:
            entry = self._weights.get(key)
            if entry is None or entry[0] is not table:
                entry = self._weights[key] = (table, factory(table))
            return entry[1]

    def samples_for(self, name: str) -> TableSampleSet | None:
        """The pre-built sample set for ``name`` (``None`` when the
        catalog was built without a ``sample_budget`` or the table is
        unknown)."""
        with self._lock:
            return self._samples.get(name)

    def sample_stats(self) -> dict:
        """Sampling counters + per-table summaries for ``/stats``."""
        with self._lock:
            return {
                "budget": self._sample_budget,
                "built": self._samples_built,
                "loaded": self._samples_loaded,
                "tables": {name: s.describe() for name, s in sorted(self._samples.items())},
            }

    def unregister(self, name: str) -> None:
        """Forget ``name``.  The export is unlinked once the table is
        garbage collected (the pool holds only a weak finalizer), so
        sessions still mining it are unaffected."""
        table = None
        with self._lock:
            table = self._tables.pop(name, None)
            self._samples.pop(name, None)
            self._marginals.pop(name, None)
        if table is not None:
            with self._weights_lock:
                for key in [
                    k for k, (held, _wf) in self._weights.items() if held is table
                ]:
                    del self._weights[key]

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> Table:
        """The table registered under ``name``.

        Raises :class:`~repro.errors.UnknownTableError` otherwise.
        """
        with self._lock:
            try:
                return self._tables[name]
            except KeyError:
                raise UnknownTableError(f"no table registered as {name!r}") from None

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tables))

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._tables

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    @property
    def pool(self) -> CountingPool | None:
        """The shared counting pool (``None`` = this catalog serves serially)."""
        return self._pool

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Drop every table and close a catalog-owned pool (workers +
        exports).  A borrowed pool is left running.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._tables.clear()
            self._samples.clear()
            self._marginals.clear()
        with self._weights_lock:
            self._weights.clear()
        if self._pool is not None and self._owns_pool:
            self._pool.close()
        self._pool = None

    def __enter__(self) -> "TableCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"TableCatalog(tables={len(self._tables)}, pool={self._pool!r}, {state})"
