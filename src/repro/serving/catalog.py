"""The table catalog: register immutable tables once, export them once.

A :class:`TableCatalog` is the serving tier's source of truth for
tables.  Tenants refer to tables by name; the catalog holds the
:class:`~repro.table.Table` objects (keeping them — and therefore
their shared-memory exports — alive for as long as they are served)
and owns the one :class:`~repro.core.parallel.CountingPool` every
tenant session counts through.

Registration is the only moment a table's data moves: with a usable
pool, :meth:`TableCatalog.register` eagerly places the table's
dictionary-encoded code arrays and measures into the pool's shared
immutable region, so the first tenant's first expansion pays no export
cost and the hundredth tenant shares the same bytes.  Tables are
immutable (`Table` has no mutating API), which is what makes one
export safe to serve to everyone.

Ownership: the catalog owns a pool it *created* (``n_workers=``) and
closes it — terminating workers and unlinking every export — in
:meth:`TableCatalog.close`; a pool passed in via ``pool=`` is borrowed
and left running.  Individual sessions never close the catalog's pool
(see :mod:`repro.session.session`).
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.core.parallel import CountingPool
from repro.errors import ServingError, UnknownTableError
from repro.table.table import Table

__all__ = ["TableCatalog"]


class TableCatalog:
    """Named registry of immutable tables over one shared counting pool.

    Parameters
    ----------
    pool:
        An existing :class:`~repro.core.parallel.CountingPool` to serve
        every registered table through (borrowed — not closed by
        :meth:`close`).
    n_workers:
        When no ``pool`` is given: ``None``/``1`` serves serially (no
        pool, no exports), ``0`` builds a catalog-owned pool over every
        core, ``>= 2`` over that many workers.  A catalog-owned pool is
        closed by :meth:`close`.
    """

    def __init__(
        self,
        *,
        pool: CountingPool | None = None,
        n_workers: int | None = None,
    ):
        if pool is not None:
            self._pool: CountingPool | None = pool
            self._owns_pool = False
        elif n_workers is not None and n_workers != 1:
            # Not resolve_pool(): that returns the process-wide shared
            # default pool, and a catalog wants sole ownership.
            self._pool = CountingPool(n_workers)
            self._owns_pool = True
        else:
            self._pool = None
            self._owns_pool = False
        self._tables: dict[str, Table] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- registration ------------------------------------------------------------

    def register(self, name: str, table: Table) -> Table:
        """Register ``table`` under ``name`` and export it to the pool.

        Idempotent for the same object (re-registering the identical
        table is a no-op returning it); a *different* table under an
        existing name raises :class:`~repro.errors.ServingError` —
        served tables are immutable, replacement would invalidate every
        tenant's displayed counts.  The shared-memory export (when a
        usable pool exists and the table is large enough to benefit)
        happens here, once, so no tenant pays it later.
        """
        if not name:
            raise ServingError("table name must be non-empty")
        with self._lock:
            if self._closed:
                raise ServingError("table catalog is closed")
            existing = self._tables.get(name)
            if existing is not None:
                if existing is table:
                    return table
                raise ServingError(
                    f"table {name!r} is already registered with different data; "
                    "served tables are immutable — register under a new name"
                )
            self._tables[name] = table
        if self._pool is not None:
            # Eager export: backend_for creates (or reuses) the table's
            # shared region; the backend object itself is discarded.
            self._pool.backend_for(table)
        return table

    def unregister(self, name: str) -> None:
        """Forget ``name``.  The export is unlinked once the table is
        garbage collected (the pool holds only a weak finalizer), so
        sessions still mining it are unaffected."""
        with self._lock:
            self._tables.pop(name, None)

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> Table:
        """The table registered under ``name``.

        Raises :class:`~repro.errors.UnknownTableError` otherwise.
        """
        with self._lock:
            try:
                return self._tables[name]
            except KeyError:
                raise UnknownTableError(f"no table registered as {name!r}") from None

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tables))

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._tables

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    @property
    def pool(self) -> CountingPool | None:
        """The shared counting pool (``None`` = this catalog serves serially)."""
        return self._pool

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Drop every table and close a catalog-owned pool (workers +
        exports).  A borrowed pool is left running.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._tables.clear()
        if self._pool is not None and self._owns_pool:
            self._pool.close()
        self._pool = None

    def __enter__(self) -> "TableCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"TableCatalog(tables={len(self._tables)}, pool={self._pool!r}, {state})"
