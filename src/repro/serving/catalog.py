"""The table catalog: versioned, append-able tables over one shared pool.

A :class:`TableCatalog` is the serving tier's source of truth for
tables.  Tenants refer to tables by name; the catalog holds the
:class:`~repro.table.Table` objects (keeping them — and therefore
their shared-memory exports — alive for as long as they are served)
and owns the one :class:`~repro.core.parallel.CountingPool` every
tenant session counts through.

Registration is the only moment a whole table's data moves: with a
usable pool, :meth:`TableCatalog.register` eagerly places the table's
dictionary-encoded code arrays and measures into the pool's shared
immutable region, so the first tenant's first expansion pays no export
cost and the hundredth tenant shares the same bytes.  Every individual
``Table`` object stays immutable (`Table` has no mutating API), which
is what makes one export safe to serve to everyone.

*Names*, however, are versioned (the commits+refs shape of dataset
versioning): :meth:`register` creates version 1 and
:meth:`append_rows` / :meth:`replace_table` create versions 2, 3, ….
An append extends the dictionary-encoded code arrays under the
prefix-preserving invariant (:meth:`repro.table.table.Table.append_rows`),
so the catalog can maintain the expensive per-table structures
incrementally instead of rebuilding them cold: the pool export is
grown by one copy of the resident segment
(:meth:`~repro.core.parallel.CountingPool.append_export`), the
first-pick marginal vectors get delta bincounts over only the appended
rows (:func:`~repro.core.first_pick.extend_first_pick_cache`,
bit-identical to a cold rebuild), a §4.3 reservoir keeps a uniform
fresh sample current in O(appended), and the deterministic sample set
— whose delta cannot be maintained without perturbing seeded draws —
is rebuilt *lazily* on next access and its persisted file
re-fingerprinted.  Sessions pin the version they started on (they hold
the ``Table`` object; nothing the catalog does ever mutates it), new
sessions get the latest version, and a superseded version is reaped —
export unlinked, weight registry purged — when its last pinned session
closes (:meth:`unpin`).

Ownership: the catalog owns a pool it *created* (``n_workers=``) and
closes it — terminating workers and unlinking every export — in
:meth:`TableCatalog.close`; a pool passed in via ``pool=`` is borrowed
and left running.  Individual sessions never close the catalog's pool
(see :mod:`repro.session.session`).
"""

from __future__ import annotations

import hashlib
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.core.first_pick import (
    FirstPickCache,
    build_first_pick_cache,
    extend_first_pick_cache,
)
from repro.core.parallel import CountingPool
from repro.core.weights import (
    BitsWeight,
    SizeMinusOneWeight,
    SizeWeight,
    WeightFunction,
)
from repro.errors import ServingError, TableConflictError, UnknownTableError
from repro.sampling.reservoir import ReservoirSampler
from repro.serving.marginals import (
    load_first_pick,
    save_first_pick,
    table_fingerprint,
)
from repro.serving.samples import (
    TableSampleSet,
    build_sample_set,
    derive_seed,
    load_sample_set,
)
from repro.table.table import Table

__all__ = ["TableCatalog", "TableVersion", "WEIGHT_FUNCTIONS"]

#: Weight functions creatable by name over the wire.  Factories take
#: the served table — Bits weighting derives per-column bit counts
#: from the table's dictionary sizes (§2.2).  Lives on the catalog so
#: registration-time precompute (first-pick marginals) resolves the
#: *same* instances tenant sessions later key contexts on;
#: :mod:`repro.serving.server` re-exports it for compatibility.
WEIGHT_FUNCTIONS: dict[str, Callable[[Table], WeightFunction]] = {
    "size": lambda table: SizeWeight(),
    "bits": BitsWeight.for_table,
    "size_minus_one": lambda table: SizeMinusOneWeight(),
}

_SAMPLE_FILE_SAFE = re.compile(r"[^A-Za-z0-9._-]")


@dataclass
class TableVersion:
    """One live version of a registered table name.

    ``pins`` counts the live sessions mining exactly this version; a
    superseded version is reaped (export unlinked, weight-registry
    entries purged) when its last pin is released.  ``appended`` is the
    row count the creating :meth:`TableCatalog.append_rows` added
    (``0`` for register / replace versions).
    """

    version: int
    table: Table
    appended: int = 0
    pins: int = 0

    @property
    def rows(self) -> int:
        return self.table.n_rows

    def describe(self) -> dict:
        """JSON-friendly summary for ``/stats``."""
        return {
            "version": self.version,
            "rows": self.rows,
            "appended": self.appended,
            "pins": self.pins,
        }


class TableCatalog:
    """Named registry of immutable tables over one shared counting pool.

    Parameters
    ----------
    pool:
        An existing :class:`~repro.core.parallel.CountingPool` to serve
        every registered table through (borrowed — not closed by
        :meth:`close`).
    n_workers:
        When no ``pool`` is given: ``None``/``1`` serves serially (no
        pool, no exports), ``0`` builds a catalog-owned pool over every
        core, ``>= 2`` over that many workers.  A catalog-owned pool is
        closed by :meth:`close`.
    sample_budget:
        When set (> 0), :meth:`register` also pre-builds a
        :class:`~repro.serving.TableSampleSet` for the table — uniform
        + per-column stratified samples totalling this many tuples,
        split by the §4.1 allocation DP — and exports the sample
        tables to the pool alongside the exact arrays.  Approximate
        expansions then mine these samples (:meth:`samples_for`).
    sample_seed:
        Base seed for sample draws; each table's effective seed is
        :func:`~repro.serving.samples.derive_seed` of its name, so
        rebuilds in other processes reproduce the same samples.
    sample_dir:
        Directory to persist sample row ids under (atomic writes).  On
        re-registration after a restart the catalog reloads matching
        files instead of re-scanning and re-drawing; any fingerprint
        mismatch (rows, budget, seed) triggers a rebuild + re-persist.
    marginal_mw:
        When set, :meth:`register` also precomputes the shared
        first-pick marginal cache
        (:class:`~repro.core.first_pick.FirstPickCache`) for each
        ``marginal_weightings`` entry at this ``mw`` — the level-1
        count/marginal vectors every cold session's first pick scans
        for.  Sessions whose ``(table, weighting, mw)`` matches get the
        cache read-only via :meth:`marginals_for`; everything else
        falls back to the normal scan.  ``None`` (default) disables
        the cache.
    marginal_weightings:
        Weighting names (keys of :data:`WEIGHT_FUNCTIONS`) to
        precompute marginals for; each costs one level-1 pass over the
        table at registration.
    marginal_dir:
        Directory to persist marginal caches under (atomic writes,
        fingerprint-checked like ``sample_dir``): stale or corrupt
        files are rejected — with a counter — and rebuilt, never
        served.
    marginal_pairs, marginal_pair_threshold:
        Bound the optional level-2 cache: at most ``marginal_pairs``
        hot column pairs per cache (0 disables level 2), a pair
        becoming hot after ``marginal_pair_threshold`` observed cold
        expansions.
    """

    def __init__(
        self,
        *,
        pool: CountingPool | None = None,
        n_workers: int | None = None,
        sample_budget: int | None = None,
        sample_seed: int = 0,
        sample_dir: str | os.PathLike | None = None,
        marginal_mw: float | None = None,
        marginal_weightings: Sequence[str] = ("size",),
        marginal_dir: str | os.PathLike | None = None,
        marginal_pairs: int = 0,
        marginal_pair_threshold: int = 2,
    ):
        if sample_budget is not None and sample_budget <= 0:
            raise ServingError("sample_budget must be a positive tuple count")
        self._sample_budget = sample_budget
        self._sample_seed = int(sample_seed)
        self._sample_dir = Path(sample_dir) if sample_dir is not None else None
        self._samples: dict[str, TableSampleSet] = {}
        self._samples_built = 0
        self._samples_loaded = 0
        if marginal_mw is not None and not float(marginal_mw) > 0:
            raise ServingError("marginal_mw must be > 0 (or None to disable)")
        unknown = [w for w in marginal_weightings if w not in WEIGHT_FUNCTIONS]
        if unknown:
            raise ServingError(
                f"unknown marginal weighting(s) {unknown!r}; "
                f"choose from {sorted(WEIGHT_FUNCTIONS)}"
            )
        self._marginal_mw = None if marginal_mw is None else float(marginal_mw)
        self._marginal_weightings = tuple(marginal_weightings)
        self._marginal_dir = Path(marginal_dir) if marginal_dir is not None else None
        self._marginal_pairs = int(marginal_pairs)
        self._marginal_pair_threshold = int(marginal_pair_threshold)
        self._marginals: dict[str, dict[str, FirstPickCache]] = {}
        self._marginals_built = 0
        self._marginals_loaded = 0
        self._marginals_rejected = 0
        # Weight-instance registry: one shared instance per (name,
        # table), so registration-time caches and tenant contexts key
        # on the same object.  Entries keep a strong table reference —
        # id() keys alone could be recycled by a new table allocated at
        # a dead table's address.
        self._weights: dict[tuple[str, int], tuple[Table, WeightFunction]] = {}
        self._weights_lock = threading.Lock()
        # SIGKILL mid-save leaves "<file>.tmp" litter in the persist
        # directories; sweep it now, exactly like SnapshotStore sweeps
        # its .jsonl.tmp-* files.
        self.cleaned_tmp = 0
        for directory in (self._sample_dir, self._marginal_dir):
            if directory is None or not directory.is_dir():
                continue
            for tmp in directory.glob("*.tmp"):
                try:
                    tmp.unlink()
                    self.cleaned_tmp += 1
                except OSError:  # pragma: no cover - racing cleaner
                    pass
        if pool is not None:
            self._pool: CountingPool | None = pool
            self._owns_pool = False
        elif n_workers is not None and n_workers != 1:
            # Not resolve_pool(): that returns the process-wide shared
            # default pool, and a catalog wants sole ownership.
            self._pool = CountingPool(n_workers)
            self._owns_pool = True
        else:
            self._pool = None
            self._owns_pool = False
        self._tables: dict[str, Table] = {}
        # Version records: name -> latest version number, plus one
        # TableVersion per *live* version — the latest, and any
        # superseded version still pinned by an open session.  A record
        # outlives unregister while pinned (reaped on last unpin).
        self._latest: dict[str, int] = {}
        self._records: dict[tuple[str, int], TableVersion] = {}
        # §4.3 freshness: one uniform reservoir per name, offered every
        # appended row id in O(appended) — the sample that is *already
        # current* the moment an append lands, while the deterministic
        # sample set rebuilds lazily.
        self._fresh: dict[str, ReservoirSampler] = {}
        self._stale_samples: set[str] = set()
        self._versions_created = 0
        self._versions_reaped = 0
        self._appends = 0
        self._rows_appended = 0
        self._marginals_delta = 0
        self._samples_lazy_rebuilt = 0
        self._artifacts_purged = 0
        # Serialises version transitions (append/replace/unregister):
        # incremental maintenance reads the old version's structures and
        # must not race another writer's install.
        self._version_lock = threading.Lock()
        #: Fired (outside catalog locks) with ``(name, table)`` after a
        #: version is reaped — the serving facade's hook for dropping
        #: per-table derived state (context prototypes).
        self.on_reap: Callable[[str, Table], None] | None = None
        self._lock = threading.Lock()
        self._closed = False

    # -- registration ------------------------------------------------------------

    def register(self, name: str, table: Table) -> Table:
        """Register ``table`` under ``name`` (version 1) and export it.

        Idempotent for the same object (re-registering the identical
        table is a no-op returning it); a *different* table under an
        existing name raises
        :class:`~repro.errors.TableConflictError` — the catalog never
        swaps data out from under live sessions implicitly.  Growth is
        explicit: :meth:`append_rows` extends the table as a new
        version, :meth:`replace_table` swaps it wholesale.  The
        shared-memory export (when a usable pool exists and the table
        is large enough to benefit) happens here, once, so no tenant
        pays it later.
        """
        if not name:
            raise ServingError("table name must be non-empty")
        with self._version_lock:
            with self._lock:
                if self._closed:
                    raise ServingError("table catalog is closed")
                existing = self._tables.get(name)
                if existing is not None:
                    if existing is table:
                        return table
                    raise TableConflictError(
                        f"table {name!r} is already registered with different "
                        "data; use append_rows(name, rows) to grow it as a new "
                        "version, or replace_table(name, table) to swap it"
                    )
                # Normally version 1; if pinned records from a previous
                # registration of this name are still alive, continue
                # their numbering so (name, version) keys never collide.
                version = 1 + max(
                    (v for (n, v) in self._records if n == name), default=0
                )
                self._tables[name] = table
                self._latest[name] = version
                self._records[(name, version)] = TableVersion(
                    version=version, table=table
                )
                self._versions_created += 1
            if self._pool is not None:
                # Eager export: backend_for creates (or reuses) the table's
                # shared region; the backend object itself is discarded.
                self._pool.backend_for(table)
            if self._sample_budget is not None:
                samples = self._build_or_load_samples(name, table)
                with self._lock:
                    self._samples[name] = samples
                    self._fresh[name] = self._new_reservoir(name, table)
                if self._pool is not None:
                    # Approximate expansions mine the sample tables, so they
                    # are exported alongside the exact arrays (small enough
                    # that the pool may serve them serially anyway).
                    for sample in samples.samples:
                        self._pool.backend_for(sample.table)
            if self._marginal_mw is not None:
                marginals = self._build_or_load_marginals(name, table)
                with self._lock:
                    self._marginals[name] = marginals
            return table

    def append_rows(self, name: str, rows: Sequence[Sequence[Any]]) -> TableVersion:
        """Append ``rows`` to ``name`` as a new table version.

        The incremental-maintenance path: the new version's table
        extends the old one under the dictionary-prefix invariant, the
        pool export is built by one grow-and-copy of the resident
        segment, the first-pick marginal vectors get delta bincounts
        over only the appended rows (bit-identical to a cold rebuild;
        any cache whose delta cannot be maintained — e.g. a ``bits``
        weighting over a dictionary that grew — is rebuilt cold), the
        freshness reservoir is offered the appended row ids, and the
        deterministic sample set is marked stale for lazy rebuild (its
        persisted file is re-fingerprinted then).  Sessions already
        open keep mining the old version untouched; the returned record
        is what new sessions will pin.
        """
        rows = [tuple(row) for row in rows]
        if not rows:
            raise ServingError("append_rows needs at least one row")
        with self._version_lock:
            with self._lock:
                if self._closed:
                    raise ServingError("table catalog is closed")
                old = self._tables.get(name)
                if old is None:
                    raise UnknownTableError(f"no table registered as {name!r}")
            new_table = old.append_rows(rows)
            record = self._install_version(name, new_table, old, appended=len(rows))
            self._appends += 1
            self._rows_appended += len(rows)
            return record

    def replace_table(self, name: str, table: Table) -> TableVersion:
        """Swap ``name``'s data wholesale as a new table version.

        No append relation is assumed, so every per-table structure is
        rebuilt cold (export, marginal caches, freshness reservoir) or
        marked for lazy rebuild (the deterministic sample set).  Pinned
        sessions keep the version they started on, exactly as for
        :meth:`append_rows`.
        """
        with self._version_lock:
            with self._lock:
                if self._closed:
                    raise ServingError("table catalog is closed")
                old = self._tables.get(name)
                if old is None:
                    raise UnknownTableError(f"no table registered as {name!r}")
                if old is table:
                    latest = self._records[(name, self._latest[name])]
                    return latest
            return self._install_version(name, table, None, appended=0)

    def _new_reservoir(self, name: str, table: Table) -> ReservoirSampler:
        """A freshness reservoir seeded per name, primed with every
        current row id (the Create-pass scan §4.3 starts from)."""
        assert self._sample_budget is not None
        rng = np.random.default_rng(derive_seed(f"{name}#fresh", self._sample_seed))
        reservoir = ReservoirSampler(self._sample_budget, rng)
        reservoir.offer(np.arange(table.n_rows, dtype=np.int64))
        return reservoir

    def _install_version(
        self, name: str, table: Table, old: Table | None, *, appended: int
    ) -> TableVersion:
        """Install ``table`` as ``name``'s next version (under
        ``_version_lock``).  ``old`` non-``None`` marks the append
        relation and enables every incremental path."""
        if self._pool is not None:
            if old is None or not self._pool.append_export(old, table):
                self._pool.backend_for(table)
        if self._marginal_mw is not None:
            marginals = self._maintain_marginals(name, table, old)
        if self._sample_budget is not None:
            with self._lock:
                self._stale_samples.add(name)
                fresh = self._fresh.get(name)
            if old is not None and fresh is not None:
                fresh.offer(np.arange(old.n_rows, table.n_rows, dtype=np.int64))
            else:
                with self._lock:
                    self._fresh[name] = self._new_reservoir(name, table)
        with self._lock:
            previous_v = self._latest[name]
            version = previous_v + 1
            record = TableVersion(version=version, table=table, appended=appended)
            self._tables[name] = table
            self._latest[name] = version
            self._records[(name, version)] = record
            self._versions_created += 1
            if self._marginal_mw is not None:
                self._marginals[name] = marginals
            previous = self._records.get((name, previous_v))
        if previous is not None and previous.pins == 0:
            self._reap(name, previous)
        return record

    def _maintain_marginals(
        self, name: str, table: Table, old: Table | None
    ) -> dict[str, FirstPickCache]:
        """New-version first-pick caches: delta-extended from the old
        version's where the append relation holds and per-position
        weights are unchanged, rebuilt cold otherwise; either way the
        persisted files are rewritten under the new fingerprint."""
        assert self._marginal_mw is not None
        with self._lock:
            old_marginals = dict(self._marginals.get(name, {}))
        fingerprint = table_fingerprint(table)
        caches: dict[str, FirstPickCache] = {}
        for weighting in self._marginal_weightings:
            wf = self.weight(weighting, table)
            cache = None
            old_cache = old_marginals.get(weighting) if old is not None else None
            if old_cache is not None and old_cache.table is old:
                cache = extend_first_pick_cache(
                    old_cache,
                    table,
                    wf,
                    pair_limit=self._marginal_pairs,
                    pair_threshold=self._marginal_pair_threshold,
                )
                if cache is not None:
                    self._marginals_delta += 1
            if cache is None:
                cache = build_first_pick_cache(
                    table,
                    wf,
                    self._marginal_mw,
                    pair_limit=self._marginal_pairs,
                    pair_threshold=self._marginal_pair_threshold,
                )
                if cache is None:  # no categorical columns: nothing to serve
                    continue
                self._marginals_built += 1
            caches[weighting] = cache
            path = self._marginal_path(name, weighting)
            if path is not None:
                try:
                    save_first_pick(
                        cache, path, fingerprint=fingerprint, weighting=weighting
                    )
                except OSError:  # pragma: no cover - disk-full etc.
                    pass
        return caches

    def _sample_path(self, name: str) -> Path | None:
        """Persistence path for ``name``'s samples (``None`` = memory only).

        The filename keeps a sanitised human-readable prefix plus a
        short digest of the exact name, so distinct names that sanitise
        identically (``"a/b"`` vs ``"a_b"``) cannot share a file.
        """
        if self._sample_dir is None:
            return None
        digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:8]
        safe = _SAMPLE_FILE_SAFE.sub("_", name)[:80]
        return self._sample_dir / f"{safe}-{digest}.samples.json"

    def _build_or_load_samples(self, name: str, table: Table) -> TableSampleSet:
        """Load persisted samples when the fingerprint matches, else
        build deterministically and (best-effort) persist."""
        assert self._sample_budget is not None
        seed = derive_seed(name, self._sample_seed)
        path = self._sample_path(name)
        if path is not None:
            loaded = load_sample_set(path, table, budget=self._sample_budget, seed=seed)
            if loaded is not None:
                self._samples_loaded += 1
                return loaded
        samples = build_sample_set(table, budget=self._sample_budget, seed=seed)
        self._samples_built += 1
        if path is not None:
            try:
                samples.save(path)
            except OSError:  # pragma: no cover - disk-full etc.
                pass  # samples are rebuildable; persistence is an optimisation
        return samples

    def _marginal_path(self, name: str, weighting: str) -> Path | None:
        """Persistence path for one ``(table name, weighting)`` cache."""
        if self._marginal_dir is None:
            return None
        digest = hashlib.sha1(name.encode("utf-8")).hexdigest()[:8]
        safe = _SAMPLE_FILE_SAFE.sub("_", name)[:80]
        return self._marginal_dir / f"{safe}-{digest}.{weighting}.marginals.json"

    def _build_or_load_marginals(
        self, name: str, table: Table
    ) -> dict[str, FirstPickCache]:
        """One first-pick cache per configured weighting.

        A persisted file is served only when its fingerprint — format
        version, table content hash, weighting name, ``mw``, row count
        — matches exactly; anything else (corrupt JSON, a re-registered
        table with different data, a knob change) is rejected with a
        counter and rebuilt.  Tables without categorical columns build
        no cache.
        """
        assert self._marginal_mw is not None
        fingerprint = table_fingerprint(table)
        caches: dict[str, FirstPickCache] = {}
        for weighting in self._marginal_weightings:
            wf = self.weight(weighting, table)
            path = self._marginal_path(name, weighting)
            if path is not None and path.exists():
                loaded = load_first_pick(
                    path,
                    table,
                    wf,
                    self._marginal_mw,
                    fingerprint=fingerprint,
                    weighting=weighting,
                    pair_limit=self._marginal_pairs,
                    pair_threshold=self._marginal_pair_threshold,
                )
                if loaded is not None:
                    self._marginals_loaded += 1
                    caches[weighting] = loaded
                    continue
                self._marginals_rejected += 1
            cache = build_first_pick_cache(
                table,
                wf,
                self._marginal_mw,
                pair_limit=self._marginal_pairs,
                pair_threshold=self._marginal_pair_threshold,
            )
            if cache is None:  # no categorical columns: nothing to serve
                continue
            self._marginals_built += 1
            caches[weighting] = cache
            if path is not None:
                try:
                    save_first_pick(
                        cache, path, fingerprint=fingerprint, weighting=weighting
                    )
                except OSError:  # pragma: no cover - disk-full etc.
                    pass  # caches are rebuildable; persistence is an optimisation
        return caches

    def marginals_for(
        self,
        name: str,
        wf: str | WeightFunction = "size",
        mw: float | None = None,
    ) -> FirstPickCache | None:
        """The first-pick cache valid for ``(name, wf, mw)``, or ``None``.

        ``wf`` may be a weighting name or a resolved instance; ``mw``
        of ``None`` skips the mw check (callers that will let the
        search validate).  Strict keying: any mismatch returns ``None``
        — the session then simply runs the cold scan.
        """
        with self._lock:
            per_table = self._marginals.get(name)
        if not per_table:
            return None
        if isinstance(wf, str):
            cache = per_table.get(wf)
        else:
            cache = next((c for c in per_table.values() if c.wf is wf), None)
        if cache is None:
            return None
        if mw is not None and float(mw) != cache.mw:
            return None
        return cache

    def marginal_stats(self) -> dict:
        """First-pick cache counters + per-cache summaries for ``/stats``."""
        with self._lock:
            tables = {
                name: {w: cache.describe() for w, cache in sorted(per.items())}
                for name, per in sorted(self._marginals.items())
            }
        return {
            "mw": self._marginal_mw,
            "weightings": list(self._marginal_weightings),
            "pair_limit": self._marginal_pairs,
            "built": self._marginals_built,
            "loaded": self._marginals_loaded,
            "rejected": self._marginals_rejected,
            "cleaned_tmp": self.cleaned_tmp,
            "tables": tables,
        }

    # -- weight registry ---------------------------------------------------------

    def weight(self, spec: str | WeightFunction, table: Table) -> WeightFunction:
        """Resolve a weighting name to this catalog's shared instance.

        Sharing instances is load-bearing twice over: the
        :class:`~repro.serving.ContextStore` keys weight functions by
        identity, and the first-pick marginal caches are valid only for
        the exact instance they were built with — so ``"size"`` must
        mean the *same* ``SizeWeight`` object for every tenant on a
        table.  Instances are cached per ``(name, table)`` — Bits
        weighting is genuinely table-derived, and neither consumer
        shares across tables anyway.  A :class:`WeightFunction`
        instance passes through unchanged (shared only if the caller
        reuses it).
        """
        if isinstance(spec, WeightFunction):
            return spec
        try:
            factory = WEIGHT_FUNCTIONS[spec]
        except KeyError:
            raise ServingError(
                f"unknown weight function {spec!r}; one of {sorted(WEIGHT_FUNCTIONS)}"
            ) from None
        key = (spec, id(table))
        with self._weights_lock:
            entry = self._weights.get(key)
            if entry is None or entry[0] is not table:
                entry = self._weights[key] = (table, factory(table))
            return entry[1]

    def samples_for(self, name: str) -> TableSampleSet | None:
        """The sample set for ``name``, current for its latest version
        (``None`` when the catalog was built without a
        ``sample_budget`` or the table is unknown).

        Appends mark sample sets *stale* rather than rebuilding them
        inline — the deterministic draw cannot be delta-maintained
        without perturbing the seeded sequence — so the first access
        after an append pays one rebuild here, producing exactly
        ``build_sample_set`` over the new version (the persisted file
        auto-rejects on its row-count fingerprint and is rewritten:
        re-fingerprinted).  Equal to a fresh registration's samples,
        which is what keeps approximate expansions byte-equal across
        backends.
        """
        with self._lock:
            table = self._tables.get(name)
            stale = name in self._stale_samples
            if not stale or table is None:
                return self._samples.get(name)
        samples = self._build_or_load_samples(name, table)
        with self._lock:
            if self._tables.get(name) is table:
                self._samples[name] = samples
                self._stale_samples.discard(name)
                self._samples_lazy_rebuilt += 1
        if self._pool is not None:
            for sample in samples.samples:
                self._pool.backend_for(sample.table)
        return samples

    def fresh_sample(self, name: str) -> tuple[int, ...] | None:
        """Row ids in ``name``'s §4.3 freshness reservoir, or ``None``.

        The reservoir is offered every appended row id in O(appended),
        so it is uniform over the *latest* version the moment an append
        lands — the always-current counterpart to the lazily rebuilt
        deterministic sample set.
        """
        with self._lock:
            reservoir = self._fresh.get(name)
        if reservoir is None:
            return None
        return tuple(int(i) for i in reservoir.result())

    def sample_stats(self) -> dict:
        """Sampling counters + per-table summaries for ``/stats``."""
        with self._lock:
            return {
                "budget": self._sample_budget,
                "built": self._samples_built,
                "loaded": self._samples_loaded,
                "lazy_rebuilt": self._samples_lazy_rebuilt,
                "stale": sorted(self._stale_samples),
                "fresh": {
                    name: {"seen": r.seen, "size": r.size}
                    for name, r in sorted(self._fresh.items())
                },
                "tables": {name: s.describe() for name, s in sorted(self._samples.items())},
            }

    # -- version lifecycle -------------------------------------------------------

    def latest_version(self, name: str) -> int:
        """The latest version number of ``name`` (what a new session
        pins).  Raises :class:`~repro.errors.UnknownTableError`."""
        with self._lock:
            try:
                return self._latest[name]
            except KeyError:
                raise UnknownTableError(f"no table registered as {name!r}") from None

    def pin(self, name: str, version: int | None = None) -> TableVersion:
        """Pin a version of ``name`` for a session and return its record.

        ``None`` (the common case: session create) pins the latest
        version; an explicit ``version`` (snapshot restore) pins that
        version *if its record is still alive* and raises
        :class:`~repro.errors.UnknownTableError` otherwise — the caller
        then decides whether to fall back to the latest.
        """
        with self._lock:
            if version is None:
                version = self._latest.get(name)
                if version is None:
                    raise UnknownTableError(f"no table registered as {name!r}")
            record = self._records.get((name, version))
            if record is None:
                raise UnknownTableError(
                    f"table {name!r} has no live version {version}"
                )
            record.pins += 1
            return record

    def unpin(self, name: str, version: int) -> Table | None:
        """Release one pin on ``(name, version)``.

        When that was the last pin and the version is dead — superseded
        by a newer one, or its name unregistered — the version is
        reaped: record dropped, pool export unlinked, weight-registry
        entries purged, and (once no version of the name survives
        anywhere) persisted artifacts purged.  Returns the reaped
        :class:`~repro.table.Table` so the caller can drop its own
        derived state (e.g. context prototypes), else ``None``.
        """
        with self._lock:
            record = self._records.get((name, version))
            if record is None:
                return None
            if record.pins > 0:
                record.pins -= 1
            if record.pins > 0 or self._latest.get(name) == version:
                return None
        self._reap(name, record)
        return record.table

    def _reap(self, name: str, record: TableVersion) -> None:
        """Reap one dead version: drop its record, unlink its export,
        purge its weight-registry entries; purge persisted artifacts
        once the name has no surviving version at all."""
        table = record.table
        with self._lock:
            self._records.pop((name, record.version), None)
            self._versions_reaped += 1
            purge = name not in self._tables and not any(
                key[0] == name for key in self._records
            )
        if self._pool is not None:
            self._pool.drop_export(table)
        with self._weights_lock:
            for key in [
                k for k, (held, _wf) in self._weights.items() if held is table
            ]:
                del self._weights[key]
        if purge:
            self._purge_artifacts(name)
        if self.on_reap is not None:
            self.on_reap(name, table)

    def _purge_artifacts(self, name: str) -> None:
        """Delete ``name``'s persisted sample and marginal files.

        Without this, every unregister strands its artifacts on disk
        forever: at best fingerprint-rejected litter on a future
        re-register, at worst an unbounded byte leak in long-running
        deployments.
        """
        paths = [self._sample_path(name)]
        paths += [self._marginal_path(name, w) for w in self._marginal_weightings]
        for path in paths:
            if path is None:
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            except OSError:  # pragma: no cover - racing cleaner
                continue
            self._artifacts_purged += 1

    def version_stats(self) -> dict:
        """Version-record counters + per-name summaries for ``/stats``."""
        with self._lock:
            tables: dict[str, dict] = {}
            for (name, _version), record in sorted(self._records.items()):
                entry = tables.setdefault(
                    name, {"latest": self._latest.get(name), "versions": []}
                )
                entry["versions"].append(record.describe())
            return {
                "created": self._versions_created,
                "reaped": self._versions_reaped,
                "appends": self._appends,
                "rows_appended": self._rows_appended,
                "marginals_delta": self._marginals_delta,
                "samples_lazy_rebuilt": self._samples_lazy_rebuilt,
                "artifacts_purged": self._artifacts_purged,
                "exports_grown": 0 if self._pool is None else self._pool.exports_grown,
                "tables": tables,
            }

    def unregister(self, name: str) -> None:
        """Forget ``name``, reap its unpinned versions, and purge its
        persisted artifacts.

        Versions still pinned by open sessions survive as records —
        their exports stay linked, so those sessions are unaffected —
        and are reaped when their last pin is released.  Unpinned
        versions (including the latest) are reaped immediately;
        reaping the last surviving version also deletes the name's
        persisted sample/marginal files.
        """
        with self._version_lock:
            with self._lock:
                self._tables.pop(name, None)
                self._samples.pop(name, None)
                self._marginals.pop(name, None)
                self._fresh.pop(name, None)
                self._stale_samples.discard(name)
                self._latest.pop(name, None)
                dead = [
                    record
                    for (n, _v), record in sorted(self._records.items())
                    if n == name and record.pins == 0
                ]
                any_records = any(key[0] == name for key in self._records)
            for record in dead:
                self._reap(name, record)
            if not any_records:
                # Nothing was registered (or everything already reaped):
                # still sweep any stray persisted files, idempotently.
                self._purge_artifacts(name)

    # -- lookup ------------------------------------------------------------------

    def get(self, name: str) -> Table:
        """The table registered under ``name``.

        Raises :class:`~repro.errors.UnknownTableError` otherwise.
        """
        with self._lock:
            try:
                return self._tables[name]
            except KeyError:
                raise UnknownTableError(f"no table registered as {name!r}") from None

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tables))

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._tables

    def __len__(self) -> int:
        with self._lock:
            return len(self._tables)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    @property
    def pool(self) -> CountingPool | None:
        """The shared counting pool (``None`` = this catalog serves serially)."""
        return self._pool

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Drop every table and close a catalog-owned pool (workers +
        exports).  A borrowed pool is left running.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._tables.clear()
            self._samples.clear()
            self._marginals.clear()
            self._latest.clear()
            self._records.clear()
            self._fresh.clear()
            self._stale_samples.clear()
        with self._weights_lock:
            self._weights.clear()
        if self._pool is not None and self._owns_pool:
            self._pool.close()
        self._pool = None

    def __enter__(self) -> "TableCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"TableCatalog(tables={len(self._tables)}, pool={self._pool!r}, {state})"
