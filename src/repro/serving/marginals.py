"""Persisted first-pick marginal caches: the serving tier's disk half.

The catalog builds one :class:`~repro.core.first_pick.FirstPickCache`
per ``(table, weighting, mw)`` at registration
(:mod:`repro.core.first_pick` holds the arrays and the bit-identity
argument); this module persists those caches under
``persist_dir/marginals/`` so warm restarts skip the level-1 scans,
exactly as :mod:`repro.serving.samples` does for sample sets.

Staleness is guarded by a **content fingerprint** of the table's
categorical payload (:func:`table_fingerprint`): dictionary values and
code bytes, column names and kinds, and the row count.  Re-registering
a *changed* table under the same name produces a different fingerprint,
so a stale file can never be served — the loader returns ``None`` and
the catalog rebuilds (and counts the rejection).  Numeric columns are
deliberately outside the fingerprint: level-1 Count marginals do not
read them.

Writes use the snapshot store's atomic tmp + fsync + replace idiom;
interrupted writes leave ``*.tmp`` litter that the catalog sweeps at
construction (the same SIGKILL-litter policy the snapshot store
applies to its ``.jsonl.tmp-*`` files).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.core.first_pick import FirstPickCache
from repro.core.weights import WeightFunction
from repro.errors import ReproError
from repro.table.table import Table

__all__ = [
    "MARGINALS_VERSION",
    "load_first_pick",
    "save_first_pick",
    "table_fingerprint",
]

MARGINALS_VERSION = 1


def table_fingerprint(table: Table) -> str:
    """Content hash of everything the level-1 marginals depend on.

    Deterministic across processes and restarts: sha1 over the row
    count, each column's name and kind, and — for categoricals — the
    dictionary (in code order) plus the raw code bytes.  Two tables
    with the same fingerprint produce bit-identical level-1 arrays.
    """
    h = hashlib.sha1()
    h.update(f"rows={table.n_rows};cols={table.n_columns};".encode("utf-8"))
    for idx, column in enumerate(table.schema):
        h.update(f"col={idx}:{column.name!r}:{column.kind};".encode("utf-8"))
    for idx in table.schema.categorical_indexes:
        col = table.categorical(idx)
        h.update(repr(col.values).encode("utf-8"))
        h.update(np.ascontiguousarray(col.codes).tobytes())
    return h.hexdigest()


def save_first_pick(
    cache: FirstPickCache,
    path: str | os.PathLike,
    *,
    fingerprint: str,
    weighting: str,
) -> None:
    """Persist one cache atomically (tmp + fsync + replace).

    JSON floats round-trip ``float64`` exactly (``repr`` shortest-
    round-trip), so the reloaded marginals are bit-identical to the
    built ones.
    """
    path = Path(path)
    payload = {
        "version": MARGINALS_VERSION,
        "fingerprint": fingerprint,
        "weighting": weighting,
        "mw": cache.mw,
        "n_rows": cache.table.n_rows,
        "entries": [
            {
                "weight": weight,
                "supported": supported.tolist(),
                "counts": counts.tolist(),
                "marginals": marginals.tolist(),
            }
            for weight, supported, counts, marginals in cache.entries
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    try:  # directory entry durability, best-effort
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


def load_first_pick(
    path: str | os.PathLike,
    table: Table,
    wf: WeightFunction,
    mw: float,
    *,
    fingerprint: str,
    weighting: str,
    pair_limit: int = 0,
    pair_threshold: int = 2,
) -> FirstPickCache | None:
    """Rebuild a persisted cache against the live ``table``/``wf``.

    Returns ``None`` (never raises) when the file is missing,
    unreadable, or its fingerprint — version, table content hash,
    weighting name, ``mw``, row count — disagrees with the live state;
    the caller rebuilds and re-persists.  Arrays are shape- and
    bounds-checked so a corrupt file cannot smuggle malformed
    candidates into the search.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if (
            payload.get("version") != MARGINALS_VERSION
            or payload.get("fingerprint") != fingerprint
            or payload.get("weighting") != weighting
            or payload.get("mw") != float(mw)
            or payload.get("n_rows") != table.n_rows
        ):
            return None
        cat_positions = tuple(table.schema.categorical_indexes)
        records = payload["entries"]
        if len(records) != len(cat_positions):
            return None
        entries = []
        for pos, record in enumerate(records):
            n_values = table.categorical(cat_positions[pos]).distinct_count
            supported = np.asarray(record["supported"], dtype=np.int64)
            counts = np.asarray(record["counts"], dtype=np.float64)
            marginals = np.asarray(record["marginals"], dtype=np.float64)
            weight = float(record["weight"])
            if supported.ndim != 1 or not (
                supported.size == counts.size == marginals.size
            ):
                return None
            if supported.size and (
                supported.min() < 0 or supported.max() >= n_values
            ):
                return None
            entries.append((weight, supported, counts, marginals))
        return FirstPickCache(
            table,
            wf,
            mw,
            entries,
            pair_limit=pair_limit,
            pair_threshold=pair_threshold,
        )
    except (OSError, ValueError, KeyError, TypeError, ReproError):
        return None
