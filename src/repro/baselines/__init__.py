"""Baseline algorithms smart drill-down is evaluated against."""

from repro.baselines.apriori import FrequentItemset, apriori
from repro.baselines.summaries import count_only_greedy, full_drilldown_size, top_k_itemsets

__all__ = [
    "FrequentItemset",
    "apriori",
    "count_only_greedy",
    "full_drilldown_size",
    "top_k_itemsets",
]
