"""Classic a-priori frequent-itemset mining (Agrawal & Srikant [4]).

Smart drill-down's marginal-rule search borrows a-priori's level-wise
candidate generation (Section 3.5); this module implements the original
algorithm over a relational table — items are ``(column, value)`` pairs
— both as a comparison baseline (Section 7 discusses why frequent
itemsets alone are not a good summary) and as an independent oracle for
rule counts in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.rule import Rule
from repro.errors import ReproError
from repro.table.column import CategoricalColumn
from repro.table.table import Table

__all__ = ["FrequentItemset", "apriori"]


@dataclass(frozen=True)
class FrequentItemset:
    """A frequent itemset: ``(column, value-code)`` pairs plus support."""

    items: tuple[tuple[int, int], ...]  # ((column index, value code), ...)
    support: int

    def to_rule(self, table: Table) -> Rule:
        """Decode into a :class:`~repro.core.rule.Rule` over ``table``."""
        values = {}
        for col, code in self.items:
            column = table.column(col)
            assert isinstance(column, CategoricalColumn)
            values[col] = column.decode(code)
        return Rule.from_items(table.n_columns, values)


def _covered_rows(table: Table, items: tuple[tuple[int, int], ...]) -> np.ndarray:
    mask = np.ones(table.n_rows, dtype=bool)
    for col, code in items:
        column = table.column(col)
        assert isinstance(column, CategoricalColumn)
        mask &= column.mask_eq(code)
    return mask


def apriori(
    table: Table,
    min_support: int,
    *,
    max_size: int | None = None,
) -> list[FrequentItemset]:
    """All itemsets with support ≥ ``min_support`` (level-wise search).

    Candidates of size ``j`` are joins of frequent size-``j−1`` sets
    sharing their first ``j−2`` items, pruned by the downward-closure
    property before counting — the textbook algorithm.  Returns
    itemsets sorted by (size, items) for determinism.
    """
    if min_support < 1:
        raise ReproError("min_support must be >= 1")
    cat_idx = table.schema.categorical_indexes
    limit = len(cat_idx) if max_size is None else min(max_size, len(cat_idx))
    results: list[FrequentItemset] = []

    # Level 1: count every (column, code) item with one bincount per column.
    singletons: list[tuple[tuple[int, int], ...]] = []
    for col in cat_idx:
        column = table.column(col)
        assert isinstance(column, CategoricalColumn)
        counts = column.counts()
        for code in np.nonzero(counts >= min_support)[0]:
            items = ((col, int(code)),)
            singletons.append(items)
            results.append(FrequentItemset(items, int(counts[code])))
    frequent = list(singletons)
    level = 1

    frequent_set = set(frequent)
    while frequent and level < limit:
        level += 1
        # Join step: extend each frequent set by single items on later
        # columns (each candidate is generated exactly once, in column
        # order).
        candidates: list[tuple[tuple[int, int], ...]] = []
        seen: set[tuple[tuple[int, int], ...]] = set()
        for base in frequent:
            last_col = base[-1][0]
            for ext in singletons:
                if ext[0][0] <= last_col:
                    continue
                candidate = base + ext
                if candidate in seen:
                    continue
                seen.add(candidate)
                # Prune step: all (j-1)-subsets must be frequent.
                if all(
                    candidate[:i] + candidate[i + 1 :] in frequent_set
                    for i in range(len(candidate))
                ):
                    candidates.append(candidate)
        next_frequent: list[tuple[tuple[int, int], ...]] = []
        for candidate in candidates:
            support = int(_covered_rows(table, candidate).sum())
            if support >= min_support:
                next_frequent.append(candidate)
                results.append(FrequentItemset(candidate, support))
        frequent = next_frequent
        frequent_set.update(next_frequent)

    results.sort(key=lambda f: (len(f.items), f.items))
    return results
