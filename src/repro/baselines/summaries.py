"""Summary baselines smart drill-down is compared against (§2.1, §5.1, §7).

Three one-shot summarisers producing a ``k``-rule list under the same
``Score`` yardstick as BRS:

* :func:`top_k_itemsets` — the pattern-mining strawman: the ``k`` most
  frequent itemsets (weighted by ``W·Count``), ignoring overlap.  The
  paper's Section 2.1 example shows why this fails: it happily returns
  ``(a, b)``, ``(a, ?)``, ``(?, b)`` which summarise the same region
  three times.
* :func:`count_only_greedy` — greedy by ``W·Count`` with duplicates
  removed but no marginal accounting (the "if we had defined total
  score as Σ Count·W" ablation).
* :func:`full_drilldown_size` — how many rows a *traditional* drill
  down would display for the same click (the §5.1 information-overload
  comparison: all distinct values, versus smart drill-down's ``k``).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.apriori import apriori
from repro.core.rule import Rule
from repro.core.scoring import RuleList, aggregate
from repro.core.weights import WeightFunction
from repro.errors import ReproError
from repro.table.column import CategoricalColumn
from repro.table.table import Table

__all__ = ["top_k_itemsets", "count_only_greedy", "full_drilldown_size"]


def top_k_itemsets(
    table: Table,
    wf: WeightFunction,
    k: int,
    *,
    min_support: int = 1,
    max_size: int | None = None,
) -> RuleList:
    """The ``k`` rules with highest ``W(r)·Count(r)`` (overlap-blind)."""
    if k < 0:
        raise ReproError("k must be >= 0")
    itemsets = apriori(table, min_support, max_size=max_size)
    scored: list[tuple[float, int, Rule]] = []
    for i, itemset in enumerate(itemsets):
        rule = itemset.to_rule(table)
        scored.append((wf.weight(rule) * itemset.support, i, rule))
    scored.sort(key=lambda t: (-t[0], t[1]))
    return RuleList((rule for _, _, rule in scored[:k]), table, wf)


def count_only_greedy(
    table: Table,
    wf: WeightFunction,
    k: int,
    *,
    min_support: int = 1,
    max_size: int | None = None,
) -> RuleList:
    """Greedy by ``W·Count`` without marginal credit (§2.1 ablation).

    Identical candidate pool to :func:`top_k_itemsets` but skips rules
    equal to already-selected ones — still no ``MCount``, so redundant
    overlapping rules survive.  Exists to quantify how much the
    marginal objective matters (benchmark X-ablation).
    """
    # With a deduplicated pool, greedy-by-static-score IS the top-k;
    # the separation from BRS comes entirely from MCount.  Kept as a
    # distinct entry point for the ablation's naming clarity.
    return top_k_itemsets(table, wf, k, min_support=min_support, max_size=max_size)


def full_drilldown_size(table: Table, column: int | str) -> int:
    """Rows a traditional drill-down on ``column`` would display (§5.1).

    One row per distinct value present — the quantity that "could
    easily overwhelm analysts" when large.
    """
    if isinstance(column, str):
        column = table.schema.index_of(column)
    col = table.column(column)
    if not isinstance(col, CategoricalColumn):
        raise ReproError("traditional drill-down needs a categorical column")
    return int((col.counts() > 0).sum())
