"""Dataset substrates: synthetic stand-ins for the paper's datasets."""

from repro.datasets.census import (
    CENSUS_COLUMNS,
    CENSUS_DOMAIN_SIZES,
    DEFAULT_CENSUS_ROWS,
    generate_census,
)
from repro.datasets.marketing import (
    MARKETING_COLUMNS,
    MARKETING_DOMAINS,
    generate_marketing,
)
from repro.datasets.retail import RETAIL_SCHEMA, generate_retail
from repro.datasets.zipf import ClusterSpec, generate_zipf_table, zipf_probabilities

__all__ = [
    "CENSUS_COLUMNS",
    "CENSUS_DOMAIN_SIZES",
    "ClusterSpec",
    "DEFAULT_CENSUS_ROWS",
    "MARKETING_COLUMNS",
    "MARKETING_DOMAINS",
    "RETAIL_SCHEMA",
    "generate_census",
    "generate_marketing",
    "generate_retail",
    "generate_zipf_table",
    "zipf_probabilities",
]
