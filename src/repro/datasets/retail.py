"""The department-store example table (paper Example 1, Tables 1–3).

Engineered so the paper's interaction transcript reproduces exactly:

* 6000 rows with columns Store, Product, Region and a numeric Sales
  measure;
* smart drill-down on the trivial rule (k=3, Size weighting) yields
  (Target, bicycles, ?) ≈ 200, (?, comforters, MA-3) = 600 and
  (Walmart, ?, ?) = 1000 — Table 2;
* drilling into the Walmart rule yields (Walmart, cookies, ?) = 200,
  (Walmart, ?, CA-1) = 150 and (Walmart, ?, WA-5) = 130 — Table 3.

The remaining rows are deliberately diffuse background noise: spread
thinly across ten other stores, eight products and seventeen regions so
no unintended rule outranks the engineered ones.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.table.schema import ColumnKind, ColumnSchema, Schema
from repro.table.table import Table

__all__ = ["RETAIL_SCHEMA", "generate_retail"]

RETAIL_SCHEMA = Schema(
    [
        ColumnSchema("Store", ColumnKind.CATEGORICAL),
        ColumnSchema("Product", ColumnKind.CATEGORICAL),
        ColumnSchema("Region", ColumnKind.CATEGORICAL),
        ColumnSchema("Sales", ColumnKind.NUMERIC),
    ]
)

# Fourteen diffuse background stores (Target and Walmart excluded so the
# engineered rules dominate: 4200/14 = 300 rows per store < the 2·200
# marginal of the Target-bicycles rule).
_BACKGROUND_STORES = [
    "Costco", "Sears", "Kmart", "Macys", "BestBuy", "HomeDepot", "Safeway",
    "Kroger", "CVS", "Walgreens", "Lowes", "Staples", "PetSmart", "GameStop",
]
# Fourteen diffuse background products (bicycles and comforters excluded,
# same argument).
_BACKGROUND_PRODUCTS = [
    "tv", "laptops", "toys", "shoes", "games", "cookies", "phones", "books",
    "garden", "tools", "jewelry", "sports", "grocery", "furniture",
]
_REGIONS = [f"{state}-{i}" for state in ("CA", "WA", "MA", "NY", "TX") for i in range(1, 5)]
_OTHER_REGIONS = [r for r in _REGIONS if r not in ("CA-1", "WA-5", "MA-3")]
# WA-5 is not in the _REGIONS grid (WA has 1-4); add the two special ones.
_WALMART_REGIONS = ["CA-1", "WA-5"]


def generate_retail(seed: int = 7, scale: int = 1) -> Table:
    """Generate the 6000-row (times ``scale``) department-store table.

    ``scale`` multiplies every engineered block, preserving all count
    *ratios* (so the drill-down transcript is scale-invariant); sales
    figures are drawn from a seeded gamma distribution.
    """
    if scale < 1:
        raise DatasetError("scale must be >= 1")
    rng = np.random.default_rng(seed)
    rows: list[tuple[str, str, str]] = []

    def pick(options: list[str]) -> str:
        return options[int(rng.integers(len(options)))]

    # Block 1 — Target sells a lot of bicycles (200 rows, Table 2 row 1).
    for _ in range(200 * scale):
        rows.append(("Target", "bicycles", pick(_OTHER_REGIONS)))

    # Block 2 — comforters sell well in MA-3 across stores (600 rows).
    for _ in range(600 * scale):
        rows.append((pick(_BACKGROUND_STORES), "comforters", "MA-3"))

    # Block 3 — Walmart does well overall (1000 rows, Table 2 row 3),
    # decomposing into the Table 3 sub-rules.
    for _ in range(200 * scale):  # Walmart sells a lot of cookies
        rows.append(("Walmart", "cookies", pick(_OTHER_REGIONS)))
    non_cookie = [p for p in _BACKGROUND_PRODUCTS if p != "cookies"]
    for _ in range(150 * scale):  # Walmart does well in CA-1
        rows.append(("Walmart", pick(non_cookie), "CA-1"))
    for _ in range(130 * scale):  # Walmart does well in WA-5
        rows.append(("Walmart", pick(non_cookie), "WA-5"))
    for _ in range(520 * scale):  # the rest of Walmart, diffuse
        rows.append(("Walmart", pick(non_cookie), pick(_OTHER_REGIONS)))

    # Background — 4200 diffuse rows over ten stores, eight products,
    # seventeen regions: every (store, product) pair lands ≈ 52 rows,
    # far below the engineered blocks.
    for _ in range(4200 * scale):
        rows.append((pick(_BACKGROUND_STORES), pick(_BACKGROUND_PRODUCTS), pick(_OTHER_REGIONS)))

    sales = rng.gamma(shape=2.0, scale=500.0, size=len(rows)).round(2)
    data = {
        "Store": [r[0] for r in rows],
        "Product": [r[1] for r in rows],
        "Region": [r[2] for r in rows],
        "Sales": sales,
    }
    return Table.from_dict(data, RETAIL_SCHEMA)
