"""Generic skewed categorical table generator.

Used directly by benchmarks that need tables of arbitrary shape, and as
the engine underneath the synthetic Census generator.  Columns draw
values from Zipf-like distributions (frequency ∝ 1/rank^skew) and may
be grouped into *clusters* that share a latent factor, producing the
cross-column correlations real data exhibits (and that make rules of
size ≥ 2 worth finding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.table.column import CategoricalColumn
from repro.table.schema import Schema
from repro.table.table import Table

__all__ = ["ClusterSpec", "zipf_probabilities", "generate_zipf_table"]


@dataclass(frozen=True)
class ClusterSpec:
    """A group of columns correlated through a shared latent factor.

    ``strength`` is the probability a member column copies (a value
    derived from) the latent factor rather than sampling independently.
    """

    columns: tuple[int, ...]
    n_latent: int = 4
    strength: float = 0.6


def zipf_probabilities(domain: int, skew: float) -> np.ndarray:
    """Zipf value-probability vector: ``p_i ∝ 1/(i+1)^skew``.

    ``skew = 0`` is uniform; larger values concentrate mass on early
    codes (the most frequent value fraction ``f_c`` the paper's
    analyses depend on grows with skew).
    """
    if domain < 1:
        raise DatasetError("domain must be >= 1")
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def generate_zipf_table(
    n_rows: int,
    domain_sizes: Sequence[int],
    *,
    skew: float | Sequence[float] = 1.0,
    clusters: Sequence[ClusterSpec] = (),
    column_names: Sequence[str] | None = None,
    seed: int = 0,
) -> Table:
    """Generate an ``n_rows`` × ``len(domain_sizes)`` categorical table.

    Parameters
    ----------
    domain_sizes:
        Distinct-value count per column.
    skew:
        Zipf skew, scalar or per-column.
    clusters:
        Optional correlation groups; cluster members blend their Zipf
        draw with a value derived from the cluster's latent factor.
    column_names:
        Defaults to ``c0, c1, ...``.
    seed:
        Seed for the ``numpy`` generator (fully deterministic output).
    """
    n_cols = len(domain_sizes)
    if n_cols == 0:
        raise DatasetError("at least one column is required")
    if n_rows < 0:
        raise DatasetError("n_rows must be >= 0")
    skews = [float(skew)] * n_cols if np.isscalar(skew) else [float(s) for s in skew]
    if len(skews) != n_cols:
        raise DatasetError("per-column skew list must match domain_sizes")
    names = (
        tuple(column_names)
        if column_names is not None
        else tuple(f"c{i}" for i in range(n_cols))
    )
    if len(names) != n_cols:
        raise DatasetError("column_names must match domain_sizes")

    rng = np.random.default_rng(seed)
    cluster_of: dict[int, ClusterSpec] = {}
    latent: dict[int, np.ndarray] = {}
    for ci, cluster in enumerate(clusters):
        for col in cluster.columns:
            if not 0 <= col < n_cols:
                raise DatasetError(f"cluster column {col} out of range")
            if col in cluster_of:
                raise DatasetError(f"column {col} appears in two clusters")
            cluster_of[col] = cluster
        latent[ci] = rng.integers(0, cluster.n_latent, size=n_rows)

    cluster_index = {id(c): i for i, c in enumerate(clusters)}
    columns: list[CategoricalColumn] = []
    for col in range(n_cols):
        domain = int(domain_sizes[col])
        probs = zipf_probabilities(domain, skews[col])
        draws = rng.choice(domain, size=n_rows, p=probs)
        cluster = cluster_of.get(col)
        if cluster is not None and n_rows:
            factor = latent[cluster_index[id(cluster)]]
            # Deterministic per-column mapping latent -> preferred code.
            mapping = rng.integers(0, domain, size=cluster.n_latent)
            copy_mask = rng.random(n_rows) < cluster.strength
            draws = np.where(copy_mask, mapping[factor], draws)
        codes = draws.astype(np.int32)
        values = [f"{names[col]}_v{v}" for v in range(domain)]
        columns.append(CategoricalColumn(codes, values))
    return Table(Schema.categorical(names), columns)
