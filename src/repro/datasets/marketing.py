"""Synthetic Marketing survey dataset (paper Section 5 substitute).

The paper uses the Bay Area shopping-mall survey that ships with
*Elements of Statistical Learning* (8993 usable questionnaires, 14
demographic columns, every column pre-bucketized to ≤ 10 values).  That
file is not redistributable here, so this module generates a synthetic
table with the same schema, the same domain sizes, and the headline
co-occurrence structure the paper's screenshots report:

* 4918 female and 4075 male respondents (Figure 1, rows 1–2);
* exactly 2940 females with more than ten years in the Bay Area
  (Figure 1, row 3);
* exactly 980 never-married males with more than ten years in the Bay
  Area (Figure 1, row 4);
* age↔marital-status, education↔income and age↔householder-status
  correlations so deeper drill-downs surface plausible combinations.

Every experiment in Section 5 depends only on this distributional
shape — marginal frequencies, domain sizes and co-occurrence — so the
substitution preserves algorithm behaviour (see DESIGN.md §3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.table.schema import Schema
from repro.table.table import Table

__all__ = ["MARKETING_COLUMNS", "MARKETING_DOMAINS", "generate_marketing"]

#: The 14 survey columns, in the order the paper lists them (§5).
MARKETING_COLUMNS = (
    "Income",
    "Sex",
    "MaritalStatus",
    "Age",
    "Education",
    "Occupation",
    "TimeInBayArea",
    "DualIncome",
    "PersonsInHousehold",
    "PersonsUnder18",
    "HouseholderStatus",
    "TypeOfHome",
    "EthnicClass",
    "Language",
)

MARKETING_DOMAINS: dict[str, tuple[str, ...]] = {
    "Income": (
        "<$10k", "$10-14k", "$15-19k", "$20-24k", "$25-29k",
        "$30-39k", "$40-49k", "$50-74k", "$75k+",
    ),
    "Sex": ("Female", "Male"),
    "MaritalStatus": (
        "Married", "Living together", "Divorced/separated", "Widowed", "Never married",
    ),
    "Age": ("14-17", "18-24", "25-34", "35-44", "45-54", "55-64", "65+"),
    "Education": (
        "Grade 8 or less", "Grades 9-11", "HS graduate",
        "1-3 years college", "College graduate", "Grad study",
    ),
    "Occupation": (
        "Professional/Managerial", "Sales", "Laborer", "Clerical/Service",
        "Homemaker", "Student", "Military", "Retired", "Unemployed",
    ),
    "TimeInBayArea": ("<1 year", "1-3 years", "4-6 years", "7-10 years", ">10 years"),
    "DualIncome": ("Not married", "Yes", "No"),
    "PersonsInHousehold": ("1", "2", "3", "4", "5", "6", "7", "8", "9+"),
    "PersonsUnder18": ("0", "1", "2", "3", "4", "5", "6", "7", "8+"),
    "HouseholderStatus": ("Own", "Rent", "Live with family"),
    "TypeOfHome": ("House", "Condo", "Apartment", "Mobile home", "Other"),
    "EthnicClass": (
        "White", "Hispanic", "Asian", "Black", "East Indian",
        "Pacific Islander", "Native American", "Other",
    ),
    "Language": ("English", "Spanish", "Other"),
}

#: Figure 1's headline counts, engineered exactly.
N_FEMALE = 4918
N_MALE = 4075
N_ROWS = N_FEMALE + N_MALE  # 8993
N_FEMALE_LONG_BAY = 2940  # females with > 10 years in the Bay Area
N_MALE_NEVER_MARRIED_LONG_BAY = 980


def _choice(
    rng: np.random.Generator, n: int, probs: list[float]
) -> np.ndarray:
    p = np.asarray(probs, dtype=np.float64)
    p = p / p.sum()
    return rng.choice(len(p), size=n, p=p)


def generate_marketing(seed: int = 42) -> Table:
    """Generate the 8993-row synthetic Marketing survey table.

    Deterministic for a fixed ``seed``; the four headline counts above
    hold exactly for *any* seed (they are quota-assigned, not sampled).
    """
    rng = np.random.default_rng(seed)
    n = N_ROWS
    codes: dict[str, np.ndarray] = {}

    # --- Sex: exact quota, then shuffled. ---------------------------------
    sex = np.concatenate([np.zeros(N_FEMALE, np.int64), np.ones(N_MALE, np.int64)])
    rng.shuffle(sex)
    codes["Sex"] = sex
    female = sex == 0
    male = ~female

    # --- Age: mall-shopper pyramid. ---------------------------------------
    age = _choice(rng, n, [0.06, 0.17, 0.24, 0.20, 0.14, 0.10, 0.09])
    codes["Age"] = age

    # --- Marital status conditioned on age. --------------------------------
    # Married totals ≈ 42% overall: "Married" must stay below the 4075
    # count of "Male" or the Figure 1 greedy picks change (see module
    # docstring; the paper's Figure 1 shows Male as the second rule).
    marital = np.empty(n, dtype=np.int64)
    marital_by_age = {
        0: [0.01, 0.03, 0.01, 0.00, 0.95],   # 14-17: almost all never married
        1: [0.13, 0.16, 0.03, 0.00, 0.68],
        2: [0.41, 0.19, 0.09, 0.01, 0.30],
        3: [0.55, 0.09, 0.17, 0.01, 0.18],
        4: [0.60, 0.05, 0.20, 0.04, 0.11],
        5: [0.60, 0.03, 0.18, 0.10, 0.09],
        6: [0.50, 0.02, 0.13, 0.28, 0.07],
    }
    for bucket, probs in marital_by_age.items():
        mask = age == bucket
        marital[mask] = _choice(rng, int(mask.sum()), probs)
    codes["MaritalStatus"] = marital
    never_married = marital == 4

    # --- Time in Bay Area: quota-assigned to pin the Figure 1 counts. -----
    # ">10 years" (code 4) is given to exactly 2940 females, exactly 980
    # never-married males, and a sampled share of everyone else.
    # Short-stay codes 0..3 are deliberately flat: a concentrated short
    # bucket would form a (Sex, TimeInBayArea) rule outranking the
    # Figure 1 size-1 rules.
    time_bay = np.empty(n, dtype=np.int64)
    short_probs = [0.22, 0.26, 0.26, 0.26]

    def assign_quota(group: np.ndarray, quota: int) -> None:
        idx = np.nonzero(group)[0]
        if quota > idx.size:
            raise DatasetError("quota exceeds group size")
        chosen = rng.choice(idx, size=quota, replace=False)
        time_bay[chosen] = 4
        rest = np.setdiff1d(idx, chosen, assume_unique=False)
        time_bay[rest] = _choice(rng, rest.size, short_probs)

    assign_quota(female, N_FEMALE_LONG_BAY)
    assign_quota(male & never_married, N_MALE_NEVER_MARRIED_LONG_BAY)
    remaining = male & ~never_married
    n_remaining = int(remaining.sum())
    # Only ≈2% of the other males are long-time residents: total
    # ">10 years" must stay below the 4075 "Male" count or the greedy's
    # second pick becomes the TimeInBayArea rule instead of Male.
    long_flags = rng.random(n_remaining) < 0.02
    rest_codes = np.where(long_flags, 4, _choice(rng, n_remaining, short_probs))
    time_bay[remaining] = rest_codes
    codes["TimeInBayArea"] = time_bay

    # --- Education conditioned on age (students are younger). --------------
    education = np.empty(n, dtype=np.int64)
    edu_young = [0.25, 0.45, 0.20, 0.08, 0.015, 0.005]
    edu_adult = [0.03, 0.10, 0.30, 0.28, 0.19, 0.10]
    young = age <= 1
    education[young] = _choice(rng, int(young.sum()), edu_young)
    education[~young] = _choice(rng, int((~young).sum()), edu_adult)
    codes["Education"] = education

    # --- Income conditioned on education. ----------------------------------
    income = np.empty(n, dtype=np.int64)
    income_low = [0.22, 0.18, 0.16, 0.13, 0.10, 0.10, 0.06, 0.04, 0.01]
    income_mid = [0.08, 0.10, 0.12, 0.13, 0.13, 0.17, 0.13, 0.10, 0.04]
    income_high = [0.03, 0.04, 0.06, 0.08, 0.10, 0.18, 0.18, 0.20, 0.13]
    low = education <= 1
    high = education >= 4
    mid = ~low & ~high
    income[low] = _choice(rng, int(low.sum()), income_low)
    income[mid] = _choice(rng, int(mid.sum()), income_mid)
    income[high] = _choice(rng, int(high.sum()), income_high)
    codes["Income"] = income

    # --- Occupation conditioned on age. -------------------------------------
    occupation = np.empty(n, dtype=np.int64)
    occ_young = [0.05, 0.10, 0.12, 0.18, 0.02, 0.45, 0.02, 0.00, 0.06]
    occ_adult = [0.28, 0.12, 0.14, 0.22, 0.10, 0.03, 0.01, 0.02, 0.08]
    occ_old = [0.10, 0.04, 0.04, 0.08, 0.10, 0.00, 0.00, 0.60, 0.04]
    old = age >= 6
    occupation[young] = _choice(rng, int(young.sum()), occ_young)
    occupation[~young & ~old] = _choice(rng, int((~young & ~old).sum()), occ_adult)
    occupation[old] = _choice(rng, int(old.sum()), occ_old)
    codes["Occupation"] = occupation

    # --- Dual income is a function of marital status plus noise. -----------
    married = marital == 0
    dual = np.empty(n, dtype=np.int64)
    dual[~married] = 0  # "Not married"
    n_married = int(married.sum())
    dual[married] = 1 + (rng.random(n_married) < 0.45).astype(np.int64)
    codes["DualIncome"] = dual

    # --- Household size and children. ---------------------------------------
    hh = np.empty(n, dtype=np.int64)
    hh_single = [0.42, 0.30, 0.12, 0.08, 0.04, 0.02, 0.01, 0.005, 0.005]
    hh_family = [0.04, 0.30, 0.24, 0.24, 0.10, 0.05, 0.02, 0.005, 0.005]
    hh[married] = _choice(rng, n_married, hh_family)
    hh[~married] = _choice(rng, n - n_married, hh_single)
    codes["PersonsInHousehold"] = hh
    under18 = np.minimum(
        np.maximum(hh - 1, 0),
        _choice(rng, n, [0.52, 0.20, 0.15, 0.08, 0.03, 0.01, 0.005, 0.003, 0.002]),
    )
    codes["PersonsUnder18"] = under18

    # --- Householder status conditioned on age. -----------------------------
    householder = np.empty(n, dtype=np.int64)
    hs_young = [0.04, 0.38, 0.58]
    hs_adult = [0.55, 0.38, 0.07]
    householder[young] = _choice(rng, int(young.sum()), hs_young)
    householder[~young] = _choice(rng, int((~young).sum()), hs_adult)
    codes["HouseholderStatus"] = householder

    # --- Home type conditioned on householder status. -----------------------
    home = np.empty(n, dtype=np.int64)
    own = householder == 0
    home[own] = _choice(rng, int(own.sum()), [0.78, 0.12, 0.04, 0.05, 0.01])
    home[~own] = _choice(rng, int((~own).sum()), [0.28, 0.10, 0.52, 0.05, 0.05])
    codes["TypeOfHome"] = home

    # --- Ethnicity and language (correlated). --------------------------------
    ethnic = _choice(rng, n, [0.62, 0.14, 0.13, 0.06, 0.02, 0.01, 0.01, 0.01])
    codes["EthnicClass"] = ethnic
    language = np.empty(n, dtype=np.int64)
    hispanic = ethnic == 1
    language[hispanic] = _choice(rng, int(hispanic.sum()), [0.45, 0.50, 0.05])
    language[~hispanic] = _choice(rng, int((~hispanic).sum()), [0.90, 0.01, 0.09])
    codes["Language"] = language

    data = {
        name: [MARKETING_DOMAINS[name][c] for c in codes[name]] for name in MARKETING_COLUMNS
    }
    return Table.from_dict(data, Schema.categorical(MARKETING_COLUMNS))
