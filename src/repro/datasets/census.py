"""Synthetic US-1990-Census-shaped dataset (paper Section 5 substitute).

The paper's large-table experiments use the UCI "US Census Data (1990)"
extract: 2,458,285 rows × 68 pre-bucketized categorical columns.  The
raw file is ~350 MB and not redistributable here, so this module
generates a synthetic table with the same shape: 68 columns whose
domain sizes mirror the UCI attribute list (2–18 distinct values,
heavily skewed), correlated in thematic clusters (demographics,
income/work, ancestry/language, disability, military service).

Sections 5.2.2–5.2.3 use Census purely to study sampling accuracy
versus ``minSS`` and scan-dominated runtime; both depend only on the
row count and per-column frequency skew, which this generator controls
— see DESIGN.md §3.  The default row count is laptop-friendly; pass
``n_rows=2_458_285`` for the full-size table.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DatasetError
from repro.datasets.zipf import ClusterSpec, generate_zipf_table
from repro.table.table import Table

__all__ = ["CENSUS_COLUMNS", "CENSUS_DOMAIN_SIZES", "DEFAULT_CENSUS_ROWS", "generate_census"]

#: Column names follow the UCI extract's ``d``-prefixed attribute list.
CENSUS_COLUMNS: tuple[str, ...] = (
    "dAge", "dAncstry1", "dAncstry2", "iAvail", "iCitizen", "iClass", "dDepart",
    "iDisabl1", "iDisabl2", "iEnglish", "iFeb55", "iFertil", "dHispanic", "dHour89",
    "dHours", "iImmigr", "dIncome1", "dIncome2", "dIncome3", "dIncome4", "dIncome5",
    "dIncome6", "dIncome7", "dIncome8", "dIndustry", "iKorean", "iLang1", "iLooking",
    "iMarital", "iMay75880", "iMeans", "iMilitary", "iMobility", "iMobillim",
    "dOccup", "iOthrserv", "iPerscare", "dPOB", "dPoverty", "dPwgt1", "iRagechld",
    "dRearning", "iRelat1", "iRelat2", "iRemplpar", "iRiders", "iRlabor",
    "iRownchld", "dRpincome", "iRPOB", "iRrelchld", "iRspouse", "iRvetserv",
    "iSchool", "iSept80", "iSex", "iSubfam1", "iSubfam2", "iTmpabsnt",
    "dTravtime", "iVietnam", "dWeek89", "iWork89", "iWorklwk", "iWWII",
    "iYearsch", "iYearwrk", "dYrsserv",
)

#: Domain sizes mirroring the bucketized UCI extract (2–18 values).
CENSUS_DOMAIN_SIZES: tuple[int, ...] = (
    8, 12, 12, 3, 5, 10, 6, 3, 3, 5, 2, 14, 10, 6,
    5, 11, 5, 5, 5, 5, 5, 5, 5, 5, 13, 2, 3, 3,
    5, 2, 12, 5, 4, 3,
    9, 2, 3, 17, 6, 6, 5,
    8, 13, 4, 4, 9, 7,
    3, 9, 18, 3, 7, 12,
    4, 2, 2, 5, 5, 4,
    7, 2, 6, 3, 3, 2,
    18, 9, 10,
)

assert len(CENSUS_COLUMNS) == 68 and len(CENSUS_DOMAIN_SIZES) == 68

#: Laptop-friendly default; the paper's table has 2,458,285 rows.
DEFAULT_CENSUS_ROWS = 200_000

#: Thematic correlation clusters (column indexes into CENSUS_COLUMNS).
_CLUSTERS: tuple[ClusterSpec, ...] = (
    ClusterSpec(columns=(0, 28, 40, 47, 50, 51), n_latent=5, strength=0.55),  # age/family
    ClusterSpec(columns=(16, 17, 18, 19, 20, 21, 22, 23, 38, 41, 48), n_latent=4, strength=0.5),
    ClusterSpec(columns=(1, 2, 9, 12, 26, 37, 49), n_latent=6, strength=0.5),  # ancestry
    ClusterSpec(columns=(7, 8, 33, 36), n_latent=3, strength=0.6),  # disability
    ClusterSpec(columns=(10, 25, 29, 31, 54, 60, 63, 67), n_latent=3, strength=0.65),  # military
    ClusterSpec(columns=(13, 14, 24, 34, 59, 61, 62, 66), n_latent=5, strength=0.45),  # work
)


def generate_census(
    n_rows: int = DEFAULT_CENSUS_ROWS,
    *,
    n_columns: int = 68,
    seed: int = 1990,
    skew: float = 1.2,
) -> Table:
    """Generate the synthetic Census table.

    Parameters
    ----------
    n_rows:
        Row count; ``2_458_285`` reproduces the paper's full scale.
    n_columns:
        Prefix of the 68 columns to generate (the paper's display
        experiments restrict to the first 7 columns).
    seed:
        Generator seed; output is deterministic.
    skew:
        Zipf skew of value frequencies.  1.2 makes the top value of a
        10-value column cover ≈ 45% of tuples, matching the heavy
        bucketization of the real extract.
    """
    if not 1 <= n_columns <= 68:
        raise DatasetError("n_columns must be in [1, 68]")
    clusters = tuple(
        ClusterSpec(
            columns=tuple(c for c in spec.columns if c < n_columns),
            n_latent=spec.n_latent,
            strength=spec.strength,
        )
        for spec in _CLUSTERS
        if sum(1 for c in spec.columns if c < n_columns) >= 2
    )
    return generate_zipf_table(
        n_rows,
        CENSUS_DOMAIN_SIZES[:n_columns],
        skew=skew,
        clusters=clusters,
        column_names=CENSUS_COLUMNS[:n_columns],
        seed=seed,
    )
