"""Dynamic sampling subsystem (paper Section 4)."""

from repro.sampling.allocation import (
    AllocationResult,
    GroupSpec,
    LeafSpec,
    LocalOption,
    allocate_dp,
    allocate_exhaustive,
    allocate_uniform,
    enumerate_local_options,
)
from repro.sampling.convex import (
    ConvexProblem,
    ConvexResult,
    hinge_objective,
    problem_from_groups,
    project_capped_simplex,
    solve_lp,
    solve_subgradient,
    step_objective,
)
from repro.sampling.estimate import (
    CountEstimate,
    coverage_fraction_bound,
    estimate_count,
    percent_error,
    required_sample_size,
)
from repro.sampling.handler import AccessEvent, SampleHandler
from repro.sampling.reservoir import (
    MultiReservoir,
    ReservoirSampler,
    bernoulli_sample_indexes,
)
from repro.sampling.sample import Sample

__all__ = [
    "AccessEvent",
    "AllocationResult",
    "ConvexProblem",
    "ConvexResult",
    "CountEstimate",
    "GroupSpec",
    "LeafSpec",
    "LocalOption",
    "MultiReservoir",
    "ReservoirSampler",
    "Sample",
    "SampleHandler",
    "allocate_dp",
    "allocate_exhaustive",
    "allocate_uniform",
    "bernoulli_sample_indexes",
    "coverage_fraction_bound",
    "enumerate_local_options",
    "estimate_count",
    "hinge_objective",
    "percent_error",
    "problem_from_groups",
    "project_capped_simplex",
    "required_sample_size",
    "solve_lp",
    "solve_subgradient",
    "step_objective",
]
