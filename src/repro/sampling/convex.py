"""Convex relaxation of the allocation problem — paper Problem 6 (§4.2).

Replace the step objective ``I[ess ≥ minSS]`` with the hinge
``min(1, ess/minSS)`` and relax sizes to reals; the problem becomes
convex.  The paper suggests (sub)gradient descent; because the hinge of
a linear function is piecewise-linear, the relaxation is in fact a
*linear program*, which we also solve exactly with ``scipy``'s HiGHS —
the LP optimum is the yardstick the subgradient solver is tested
against, and the quality gap of hinge-vs-step is measured by the
allocation ablation benchmark.

Unlike the DP (which assumes leaf-and-parent contributions only), the
convex form supports a general selectivity matrix: ``ess(ℓ) = Σ_r
S(r, ℓ)·n_r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.errors import AllocationError
from repro.sampling.allocation import GroupSpec

__all__ = [
    "ConvexProblem",
    "ConvexResult",
    "problem_from_groups",
    "hinge_objective",
    "step_objective",
    "solve_lp",
    "solve_subgradient",
    "project_capped_simplex",
]


@dataclass(frozen=True)
class ConvexProblem:
    """Problem 6 data: nodes, leaves, probabilities and selectivities.

    ``selectivity[i, j]`` is ``S(node_i, leaf_j)``; a leaf's own sample
    appears as a node with selectivity 1 to itself.
    """

    node_names: tuple[str, ...]
    leaf_names: tuple[str, ...]
    probabilities: np.ndarray
    selectivity: np.ndarray
    memory: float
    min_sample_size: float

    def __post_init__(self) -> None:
        n, l = len(self.node_names), len(self.leaf_names)
        if self.probabilities.shape != (l,):
            raise AllocationError("probabilities must have one entry per leaf")
        if self.selectivity.shape != (n, l):
            raise AllocationError("selectivity must be (n_nodes, n_leaves)")
        if self.memory < 0 or self.min_sample_size <= 0:
            raise AllocationError("memory must be >= 0 and min_sample_size > 0")


@dataclass(frozen=True)
class ConvexResult:
    """Solver output: real-valued sizes and the hinge objective."""

    sizes: dict[str, float]
    objective: float

    def rounded_sizes(self) -> dict[str, int]:
        """Integer sizes (ceil), the paper's post-hoc rounding.

        Rounding up adds at most ``|U|`` tuples, negligible next to
        ``M`` (§4.2).
        """
        return {name: int(np.ceil(size)) for name, size in self.sizes.items() if size > 1e-9}


def problem_from_groups(
    groups: Sequence[GroupSpec], memory: float, min_sample_size: float
) -> ConvexProblem:
    """Build the convex form from the DP's tree-model groups."""
    node_names: list[str] = []
    leaf_names: list[str] = []
    probs: list[float] = []
    for group in groups:
        if group.parent not in node_names:
            node_names.append(group.parent)
        for leaf in group.leaves:
            if leaf.name in leaf_names:
                raise AllocationError(f"leaf {leaf.name!r} appears in two groups")
            leaf_names.append(leaf.name)
            probs.append(leaf.probability)
            if leaf.name not in node_names:
                node_names.append(leaf.name)
    sel = np.zeros((len(node_names), len(leaf_names)))
    node_pos = {n: i for i, n in enumerate(node_names)}
    leaf_pos = {n: j for j, n in enumerate(leaf_names)}
    for group in groups:
        for leaf in group.leaves:
            sel[node_pos[group.parent], leaf_pos[leaf.name]] = leaf.selectivity
            sel[node_pos[leaf.name], leaf_pos[leaf.name]] = 1.0
    return ConvexProblem(
        node_names=tuple(node_names),
        leaf_names=tuple(leaf_names),
        probabilities=np.asarray(probs, dtype=np.float64),
        selectivity=sel,
        memory=float(memory),
        min_sample_size=float(min_sample_size),
    )


def hinge_objective(problem: ConvexProblem, sizes: np.ndarray) -> float:
    """``Σ_ℓ p_ℓ · min(1, ess(ℓ)/minSS)`` for node sizes ``sizes``."""
    ess = sizes @ problem.selectivity
    return float(np.sum(problem.probabilities * np.minimum(1.0, ess / problem.min_sample_size)))


def step_objective(problem: ConvexProblem, sizes: np.ndarray) -> float:
    """The original Problem 5 objective ``Σ p_ℓ · I[ess(ℓ) ≥ minSS]``."""
    ess = sizes @ problem.selectivity
    return float(np.sum(problem.probabilities * (ess >= problem.min_sample_size - 1e-9)))


def solve_lp(problem: ConvexProblem) -> ConvexResult:
    """Exact hinge optimum as a linear program (HiGHS).

    Variables ``[n_1..n_N, z_1..z_L]`` with ``z_ℓ ≤ 1``,
    ``z_ℓ ≤ ess(ℓ)/minSS``, ``Σ n ≤ M``; maximise ``Σ p_ℓ z_ℓ``.
    """
    n, l = len(problem.node_names), len(problem.leaf_names)
    c = np.concatenate([np.zeros(n), -problem.probabilities])
    # z_l - ess(l)/minSS <= 0  →  -S^T/minSS · n + I·z ≤ 0
    a_hinge = np.hstack([-problem.selectivity.T / problem.min_sample_size, np.eye(l)])
    a_mem = np.concatenate([np.ones(n), np.zeros(l)])[None, :]
    a_ub = np.vstack([a_hinge, a_mem])
    b_ub = np.concatenate([np.zeros(l), [problem.memory]])
    bounds = [(0.0, None)] * n + [(0.0, 1.0)] * l
    res = optimize.linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - HiGHS handles all feasible inputs
        raise AllocationError(f"LP solver failed: {res.message}")
    sizes = res.x[:n]
    return ConvexResult(
        sizes={name: float(s) for name, s in zip(problem.node_names, sizes)},
        objective=hinge_objective(problem, sizes),
    )


def project_capped_simplex(x: np.ndarray, cap: float) -> np.ndarray:
    """Euclidean projection of ``x`` onto ``{y ≥ 0, Σy ≤ cap}``.

    Clip negatives; if the positive mass still exceeds ``cap``, shift
    by the water-filling threshold ``τ`` with ``Σ max(x−τ, 0) = cap``
    (standard sort-based simplex projection).
    """
    if cap < 0:
        raise AllocationError("cap must be >= 0")
    y = np.maximum(x, 0.0)
    total = y.sum()
    if total <= cap:
        return y
    if cap == 0.0:
        return np.zeros_like(y)
    # Find τ via the sorted cumulative-sum characterisation.
    u = np.sort(y)[::-1]
    cumulative = np.cumsum(u)
    ks = np.arange(1, u.size + 1)
    candidates = (cumulative - cap) / ks
    valid = np.nonzero(u - candidates > 0)[0]
    # An empty valid set only happens when cap underflows against the
    # largest coordinate; the projection is then (numerically) zero.
    rho = int(valid[-1]) if valid.size else 0
    tau = candidates[rho]
    return np.maximum(y - tau, 0.0)


def solve_subgradient(
    problem: ConvexProblem,
    *,
    iterations: int = 500,
    step_scale: float | None = None,
) -> ConvexResult:
    """Projected subgradient ascent on the hinge objective (§4.2).

    Starts from all-zero sizes as the paper suggests.  Steps are
    *normalised* subgradients with a ``M/√t`` decay — the feasible
    region's diameter is of order ``M``, so unnormalised steps (whose
    magnitude is ``~p·S/minSS``, many orders smaller) would barely
    move.  The best iterate is returned (subgradient ascent is not
    monotone).
    """
    n = len(problem.node_names)
    sizes = np.zeros(n)
    best = sizes.copy()
    best_value = hinge_objective(problem, sizes)
    scale = step_scale if step_scale is not None else problem.memory
    for t in range(1, iterations + 1):
        ess = sizes @ problem.selectivity
        active = ess < problem.min_sample_size  # hinge not saturated
        grad = problem.selectivity @ (
            problem.probabilities * active / problem.min_sample_size
        )
        norm = float(np.linalg.norm(grad))
        if norm == 0.0:
            break  # every hinge saturated: at a maximiser
        step = (scale / np.sqrt(t)) * grad / norm
        sizes = project_capped_simplex(sizes + step, problem.memory)
        value = hinge_objective(problem, sizes)
        if value > best_value:
            best_value = value
            best = sizes.copy()
    return ConvexResult(
        sizes={name: float(s) for name, s in zip(problem.node_names, best)},
        objective=best_value,
    )
