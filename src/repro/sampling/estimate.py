"""Count estimation from samples, with confidence intervals (§4.3, §4.2).

The paper displays estimated counts (sample count × ``N_s``) and notes
that "since the sample is uniformly random, we can also compute
confidence intervals on the estimated count of each displayed rule".
This module provides the estimator, normal-approximation confidence
intervals, the percent-error metric of Figure 8(b), and the Section 4.2
sample-size rule ``minSS ≫ ρ(1−x)/x``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as scipy_stats

from repro.core.rule import Rule, cover_mask
from repro.errors import SamplingError
from repro.sampling.sample import Sample

__all__ = [
    "CountEstimate",
    "estimate_count",
    "percent_error",
    "required_sample_size",
    "coverage_fraction_bound",
]


@dataclass(frozen=True)
class CountEstimate:
    """A count estimate with a symmetric confidence interval."""

    rule: Rule
    estimate: float
    low: float
    high: float
    confidence: float
    sample_size: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, true_count: float) -> bool:
        """True when the interval covers ``true_count``."""
        return self.low <= true_count <= self.high


def estimate_count(sample: Sample, rule: Rule, *, confidence: float = 0.95) -> CountEstimate:
    """Estimate the full-table count of ``rule`` from ``sample``.

    Point estimate is ``N_s ×`` (sample count); the interval uses the
    normal approximation to the hypergeometric draw — the paper's
    Section 4.2 standard-deviation argument ``Dev ≈ sqrt(m·x(1−x))``
    — scaled by ``N_s``.
    """
    if not 0.0 < confidence < 1.0:
        raise SamplingError("confidence must be in (0, 1)")
    m = sample.size
    if m == 0:
        raise SamplingError("cannot estimate from an empty sample")
    covered = float(cover_mask(rule, sample.table).sum())
    point = covered * sample.scale
    if m >= sample.population > 0:
        # Full census of the covered population: the count is exact and
        # the interval collapses to the point.
        return CountEstimate(
            rule=rule,
            estimate=point,
            low=point,
            high=point,
            confidence=confidence,
            sample_size=m,
        )
    x = covered / m
    z = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    if covered <= 0.0 or covered >= m:
        # Degenerate draw (all-out or all-in): the plug-in deviation
        # sqrt(m·x(1−x)) is 0, which would claim certainty from a
        # finite sample.  Continuity-correct the fraction so the
        # interval keeps positive width and still covers the truth.
        x_c = (covered + 0.5) / (m + 1.0)
        dev_sample = math.sqrt(m * x_c * (1.0 - x_c))
    else:
        dev_sample = math.sqrt(m * x * (1.0 - x))
    half = z * dev_sample * sample.scale
    return CountEstimate(
        rule=rule,
        estimate=point,
        low=max(point - half, 0.0),
        high=point + half,
        confidence=confidence,
        sample_size=m,
    )


def percent_error(estimated: float, actual: float) -> float:
    """Figure 8(b)'s metric: ``100·|ĉ − c| / c``.

    The denominator is floored at one tuple so an empty-cover rule
    (``actual == 0``) yields a finite error — ``inf`` here would poison
    every mean-error aggregation it enters (Figure 8(b) averages over
    rules).  With ``actual == 0`` the error is simply the estimate
    expressed in percent-of-one-tuple; 0 when both are 0.
    """
    return 100.0 * abs(estimated - actual) / max(abs(actual), 1.0)


def required_sample_size(cover_fraction: float, *, rho: float = 10.0) -> float:
    """Section 4.2: a rule covering fraction ``x`` needs ``ρ(1−x)/x``.

    Derived from requiring ``E[X] ≫ Dev(X)``, i.e. ``m·x/(1−x) ≫ 1``;
    ``rho`` is the paper's accuracy constant ``ρ``.
    """
    if not 0.0 < cover_fraction <= 1.0:
        raise SamplingError("cover_fraction must be in (0, 1]")
    return rho * (1.0 - cover_fraction) / cover_fraction


def coverage_fraction_bound(n_columns: int, min_distinct: int) -> float:
    """Lower bound on the top rule's cover fraction: ``1/(|C|·|c|)``.

    Section 4.2: the most frequent value of the smallest-domain column
    gives a rule of score ≥ |T|/|c|; dividing by the maximum weight
    |C| bounds the top rule's count from below.
    """
    if n_columns < 1 or min_distinct < 1:
        raise SamplingError("n_columns and min_distinct must be >= 1")
    return 1.0 / (n_columns * min_distinct)
