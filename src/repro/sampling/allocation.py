"""Sample-memory allocation — paper Problem 5 and its DP scheme (§4.1).

Given the displayed rule tree ``U``, a probability ``p_ℓ`` that each
leaf ``ℓ`` is drilled next, selectivities ``S(r, ℓ)`` (the fraction of
``r``-covered tuples also covered by ``ℓ``) and a memory budget ``M``,
choose per-rule sample sizes ``n_r`` maximising the probability that
the next drill-down is served from memory, i.e. that
``ess(ℓ) = n_ℓ + S(parent, ℓ)·n_parent ≥ minSS``.

The problem is NP-hard (knapsack reduction, Lemma 4).  Following the
paper we assume each leaf draws only from its own sample and its
parent's, which decomposes ``U`` into independent *groups* (an internal
node plus its leaf children).  Per group there are at most ``3^d``
locally-optimal assignments — each child is

1. satisfied through the parent sample alone (``n_ℓ = 0``),
2. unsatisfied (``n_ℓ = 0``), or
3. topped up exactly to ``minSS`` (``n_ℓ = minSS − n₀·S``),

and for a fixed assignment the parent size ``n₀`` optimises a
piecewise-linear cost whose minimum sits on a breakpoint.  A knapsack
DP then combines one option per group under the budget.

:func:`allocate_exhaustive` brute-forces tiny instances (used to
validate the DP) and :func:`allocate_uniform` is the no-model baseline
benchmarked in the allocation ablation.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AllocationError

__all__ = [
    "LeafSpec",
    "GroupSpec",
    "LocalOption",
    "AllocationResult",
    "enumerate_local_options",
    "allocate_dp",
    "allocate_uniform",
    "allocate_exhaustive",
]


@dataclass(frozen=True)
class LeafSpec:
    """A leaf of the displayed rule tree, relative to its parent group.

    ``selectivity`` is ``S(parent, leaf) ∈ (0, 1]``: one parent-sample
    tuple contributes this expected fraction of a tuple to the leaf's
    effective sample.
    """

    name: str
    probability: float
    selectivity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise AllocationError(f"leaf {self.name!r}: probability must be in [0, 1]")
        if not 0.0 < self.selectivity <= 1.0:
            raise AllocationError(f"leaf {self.name!r}: selectivity must be in (0, 1]")


@dataclass(frozen=True)
class GroupSpec:
    """An internal node of ``U`` together with its leaf children."""

    parent: str
    leaves: tuple[LeafSpec, ...]

    def __post_init__(self) -> None:
        if not self.leaves:
            raise AllocationError(f"group {self.parent!r} has no leaves")
        names = [leaf.name for leaf in self.leaves]
        if len(set(names)) != len(names):
            raise AllocationError(f"group {self.parent!r} has duplicate leaf names")


@dataclass(frozen=True)
class LocalOption:
    """One locally-optimal assignment for a group.

    ``sizes`` maps the parent and each topped-up leaf to its sample
    size; ``value`` is the satisfied probability mass; ``cost`` the
    total tuples consumed.
    """

    cost: int
    value: float
    sizes: dict[str, int]
    satisfied: tuple[str, ...]


@dataclass(frozen=True)
class AllocationResult:
    """An allocation: per-rule sample sizes plus its quality."""

    sizes: dict[str, int]
    value: float
    cost: int
    satisfied: tuple[str, ...]


def _assignment_option(
    group: GroupSpec, cat1: tuple[int, ...], cat3: tuple[int, ...], min_sample_size: int
) -> LocalOption:
    """Cost-minimal realisation of one (cat1, cat3) category assignment."""
    leaves = group.leaves
    # Parent must satisfy every category-1 child on its own.
    n0_floor = 0
    for i in cat1:
        n0_floor = max(n0_floor, math.ceil(min_sample_size / leaves[i].selectivity))
    # Cost(n0) = n0 + Σ_{cat3} max(0, minSS − n0·S_i) is piecewise linear;
    # its minimum over n0 ≥ n0_floor is attained at a breakpoint.
    breakpoints = {n0_floor}
    for i in cat3:
        bp = math.ceil(min_sample_size / leaves[i].selectivity)
        if bp >= n0_floor:
            breakpoints.add(bp)
    best_cost: int | None = None
    best_sizes: dict[str, int] = {}
    for n0 in sorted(breakpoints):
        sizes: dict[str, int] = {}
        cost = n0
        for i in cat3:
            top_up = max(0, min_sample_size - math.floor(n0 * leaves[i].selectivity))
            if top_up:
                sizes[leaves[i].name] = top_up
                cost += top_up
        if n0:
            sizes[group.parent] = n0
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_sizes = sizes
    satisfied = tuple(leaves[i].name for i in sorted(set(cat1) | set(cat3)))
    value = sum(leaves[i].probability for i in set(cat1) | set(cat3))
    assert best_cost is not None
    return LocalOption(cost=best_cost, value=value, sizes=best_sizes, satisfied=satisfied)


def enumerate_local_options(group: GroupSpec, min_sample_size: int) -> list[LocalOption]:
    """All non-dominated locally-optimal options for one group.

    Enumerates the ``3^d`` category assignments of the paper, realises
    each at minimal cost, then discards options dominated in
    (cost, value).  Always contains the zero option (nothing sampled).
    """
    if min_sample_size < 1:
        raise AllocationError("min_sample_size must be >= 1")
    d = len(group.leaves)
    options: list[LocalOption] = []
    for assignment in itertools.product((1, 2, 3), repeat=d):
        cat1 = tuple(i for i, a in enumerate(assignment) if a == 1)
        cat3 = tuple(i for i, a in enumerate(assignment) if a == 3)
        options.append(_assignment_option(group, cat1, cat3, min_sample_size))
    # Dominance filter: sort by (cost, -value); keep strictly improving value.
    options.sort(key=lambda o: (o.cost, -o.value))
    kept: list[LocalOption] = []
    best_value = -1.0
    for option in options:
        if option.value > best_value:
            kept.append(option)
            best_value = option.value
    return kept


def allocate_dp(
    groups: Sequence[GroupSpec],
    memory: int,
    min_sample_size: int,
) -> AllocationResult:
    """Knapsack DP over per-group locally-optimal options (§4.1).

    ``A[i][j]`` = best satisfied probability using the first ``i``
    groups and ``j`` tuples of memory; transitions take one option per
    group.  Runs in ``O(Σ_g |options_g| · M)`` with vectorised shifts.
    """
    if memory < 0:
        raise AllocationError("memory must be >= 0")
    per_group = [enumerate_local_options(g, min_sample_size) for g in groups]
    n_budget = memory + 1
    value = np.zeros(n_budget, dtype=np.float64)
    choice: list[np.ndarray] = []
    for options in per_group:
        best = np.full(n_budget, -np.inf)
        pick = np.zeros(n_budget, dtype=np.int32)
        for oi, option in enumerate(options):
            if option.cost >= n_budget:
                continue
            cand = np.full(n_budget, -np.inf)
            if option.cost == 0:
                cand = value + option.value
            else:
                cand[option.cost :] = value[: n_budget - option.cost] + option.value
            better = cand > best
            best[better] = cand[better]
            pick[better] = oi
        value = best
        choice.append(pick)
    j = int(np.argmax(value))
    total_value = float(value[j])
    sizes: dict[str, int] = {}
    satisfied: list[str] = []
    for gi in range(len(groups) - 1, -1, -1):
        oi = int(choice[gi][j])
        option = per_group[gi][oi]
        for name, size in option.sizes.items():
            sizes[name] = sizes.get(name, 0) + size
        satisfied.extend(option.satisfied)
        j -= option.cost
    cost = sum(sizes.values())
    return AllocationResult(
        sizes=sizes, value=total_value, cost=cost, satisfied=tuple(sorted(satisfied))
    )


def _evaluate(
    groups: Sequence[GroupSpec], sizes: dict[str, int], min_sample_size: int
) -> tuple[float, tuple[str, ...]]:
    """Objective of Problem 5 for concrete sizes (under the tree model)."""
    value = 0.0
    satisfied: list[str] = []
    for group in groups:
        n0 = sizes.get(group.parent, 0)
        for leaf in group.leaves:
            ess = sizes.get(leaf.name, 0) + n0 * leaf.selectivity
            if ess >= min_sample_size:
                value += leaf.probability
                satisfied.append(leaf.name)
    return value, tuple(sorted(satisfied))


def allocate_uniform(
    groups: Sequence[GroupSpec],
    memory: int,
    min_sample_size: int,
) -> AllocationResult:
    """Baseline: split the budget evenly across all leaves (no model)."""
    leaves = [leaf.name for group in groups for leaf in group.leaves]
    if not leaves:
        return AllocationResult({}, 0.0, 0, ())
    share = memory // len(leaves)
    sizes = {name: share for name in leaves if share > 0}
    value, satisfied = _evaluate(groups, sizes, min_sample_size)
    return AllocationResult(sizes, value, sum(sizes.values()), satisfied)


def allocate_exhaustive(
    groups: Sequence[GroupSpec],
    memory: int,
    min_sample_size: int,
    *,
    grid: int = 8,
) -> AllocationResult:
    """Brute-force allocator over a discretised grid (tiny instances only).

    Each node size ranges over ``grid + 1`` evenly spaced values in
    ``[0, memory]``; all combinations within budget are evaluated.
    Exponential — used to validate :func:`allocate_dp` in tests.
    """
    names: list[str] = []
    for group in groups:
        names.append(group.parent)
        names.extend(leaf.name for leaf in group.leaves)
    names = sorted(set(names))
    if len(names) > 6:
        raise AllocationError("exhaustive allocator is limited to 6 nodes")
    levels = sorted({int(round(memory * i / grid)) for i in range(grid + 1)})
    best = AllocationResult({}, -1.0, 0, ())
    for combo in itertools.product(levels, repeat=len(names)):
        if sum(combo) > memory:
            continue
        sizes = {n: c for n, c in zip(names, combo) if c > 0}
        value, satisfied = _evaluate(groups, sizes, min_sample_size)
        cost = sum(sizes.values())
        if value > best.value or (value == best.value and cost < best.cost):
            best = AllocationResult(sizes, value, cost, satisfied)
    return best
