"""Reservoir sampling (paper Section 4.3; Vitter [35], McLeod [26]).

The Create path draws a uniform random sample of fixed size in a single
streaming pass.  :class:`ReservoirSampler` implements Algorithm R with
block-vectorised offers (each offered element draws its replacement
slot independently, which is exactly the per-element algorithm);
:class:`MultiReservoir` maintains one reservoir per displayed rule so a
single pass can refresh every sample — the paper's "in a Create phase,
the SampleHandler … creates a sample of size n_r for each displayed r".
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.rule import Rule, cover_mask
from repro.errors import SamplingError
from repro.table.table import Table

__all__ = ["ReservoirSampler", "MultiReservoir", "bernoulli_sample_indexes"]


class ReservoirSampler:
    """Uniform fixed-capacity sample of a stream of row ids (Algorithm R).

    After offering ``n`` items, the reservoir holds ``min(n, capacity)``
    of them, each with probability ``capacity / n`` — the classic
    invariant, preserved by per-element replacement draws.
    """

    def __init__(self, capacity: int, rng: np.random.Generator):
        if capacity < 0:
            raise SamplingError("capacity must be >= 0")
        self._capacity = capacity
        self._rng = rng
        self._items = np.empty(capacity, dtype=np.int64)
        self._seen = 0
        self._filled = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def seen(self) -> int:
        """Total number of items offered so far."""
        return self._seen

    @property
    def size(self) -> int:
        """Current number of items held."""
        return self._filled

    def offer(self, items: np.ndarray | Sequence[int]) -> None:
        """Offer a block of stream items (row ids) to the reservoir."""
        items = np.asarray(items, dtype=np.int64)
        if items.ndim != 1:
            raise SamplingError("offered items must be a 1-d array")
        if self._capacity == 0:
            self._seen += items.size
            return
        pos = 0
        n = items.size
        # Fill phase: copy until the reservoir is full.
        if self._filled < self._capacity:
            take = min(self._capacity - self._filled, n)
            self._items[self._filled : self._filled + take] = items[:take]
            self._filled += take
            self._seen += take
            pos = take
        if pos >= n:
            return
        # Replacement phase, vectorised: item at global position t
        # (0-based count self._seen) draws j ~ U[0, t]; j < capacity
        # replaces slot j.  Identical to per-element Algorithm R.
        rest = items[pos:]
        t = self._seen + np.arange(rest.size, dtype=np.int64)
        draws = (self._rng.random(rest.size) * (t + 1)).astype(np.int64)
        hits = np.nonzero(draws < self._capacity)[0]
        for i in hits:  # sequential: later replacements overwrite earlier
            self._items[draws[i]] = rest[i]
        self._seen += rest.size

    def result(self) -> np.ndarray:
        """Return the sampled row ids (ascending, for locality)."""
        return np.sort(self._items[: self._filled].copy())


class MultiReservoir:
    """One reservoir per rule, fed from table chunks in a single pass.

    Each chunk is matched against every rule's filter; covered row ids
    are offered to that rule's reservoir.  Also tallies the exact cover
    count per rule, which becomes the sample's scale factor and lets
    the Create pass refresh displayed counts exactly (Section 4.3's
    "while we are making the pass … find the exact counts").
    """

    def __init__(self, capacities: Mapping[Rule, int], rng: np.random.Generator):
        self._reservoirs: dict[Rule, ReservoirSampler] = {
            rule: ReservoirSampler(cap, rng) for rule, cap in capacities.items()
        }
        self._counts: dict[Rule, int] = {rule: 0 for rule in capacities}

    def offer_chunk(self, row_ids: np.ndarray, chunk: Table) -> None:
        """Process one scanned chunk: route covered rows to reservoirs."""
        for rule, reservoir in self._reservoirs.items():
            mask = cover_mask(rule, chunk)
            covered = row_ids[mask]
            self._counts[rule] += int(covered.size)
            reservoir.offer(covered)

    def counts(self) -> dict[Rule, int]:
        """Exact cover count per rule over everything offered."""
        return dict(self._counts)

    def results(self) -> dict[Rule, np.ndarray]:
        """Sampled row ids per rule."""
        return {rule: r.result() for rule, r in self._reservoirs.items()}


def bernoulli_sample_indexes(
    n_rows: int, rate: float, rng: np.random.Generator
) -> np.ndarray:
    """Row indexes of an independent Bernoulli(``rate``) sample."""
    if not 0.0 <= rate <= 1.0:
        raise SamplingError(f"rate must be in [0, 1], got {rate}")
    return np.nonzero(rng.random(n_rows) < rate)[0]
