"""The sample triple ``(f_s, N_s, T_s)`` of paper Section 4.3.

A :class:`Sample` is a uniform random subset ``T_s`` of the tuples
covered by a *filter rule* ``f_s``, together with the scale factor
``N_s`` that converts sample counts into full-table estimates.  Row ids
(global positions in the source table) travel with the sample so that
combined samples can be de-duplicated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rule import Rule, cover_mask
from repro.errors import SamplingError
from repro.table.table import Table

__all__ = ["Sample"]


@dataclass(frozen=True)
class Sample:
    """A uniform sample of the tuples covered by ``filter_rule``.

    Attributes
    ----------
    filter_rule:
        ``f_s`` — the rule every sampled tuple is covered by.
    scale:
        ``N_s`` — multiply a count over :attr:`table` by this to
        estimate the count over the full table.  For a size-``m``
        sample of a population of ``N`` covered tuples this is
        ``N / m``.
    table:
        ``T_s`` — the sampled tuples (column dictionaries shared with
        the source table).
    row_ids:
        Global source-table row positions of the sampled tuples
        (ascending); used for de-duplication in Combine.
    population:
        Exact number of tuples the source table has covered by
        ``filter_rule`` (``N``), when known.
    """

    filter_rule: Rule
    scale: float
    table: Table
    row_ids: np.ndarray
    population: int

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise SamplingError("scale factor must be positive")
        if self.row_ids.shape != (self.table.n_rows,):
            raise SamplingError("row_ids must align with the sample table")

    @property
    def size(self) -> int:
        """``|T_s|`` — number of sampled tuples."""
        return self.table.n_rows

    @property
    def rate(self) -> float:
        """Effective inclusion probability ``1 / N_s``."""
        return 1.0 / self.scale

    def estimate_count(self, rule: Rule) -> float:
        """Estimated full-table ``Count(rule)``: sample count × ``N_s``."""
        return float(cover_mask(rule, self.table).sum()) * self.scale

    def restrict(self, rule: Rule) -> tuple[np.ndarray, Table]:
        """Rows of this sample covered by ``rule`` (ids and tuples).

        Only meaningful when ``filter_rule`` is a sub-rule of ``rule``
        (then the result is a uniform sample of ``rule``'s cover).
        """
        mask = cover_mask(rule, self.table)
        idx = np.nonzero(mask)[0]
        return self.row_ids[idx], self.table.take(idx)

    def memory_tuples(self) -> int:
        """Memory accounting unit: number of stored tuples.

        The paper's budget ``M`` is expressed in tuples ("Memory
        capacity M for the SampleHandler is set to 50000 tuples").
        """
        return self.size

    def memory_cells(self) -> int:
        """Compressed accounting: stored cells (§4.2 optimisations).

        Columns fixed by the filter rule need not be stored — every
        sampled tuple shares the filter's value there — so a sample
        costs ``size × (columns − filter.size)`` cells.  The trivial
        filter stores everything; a fully instantiated filter stores
        nothing per tuple.
        """
        free_columns = len(self.filter_rule) - self.filter_rule.size
        return self.size * free_columns

    def __repr__(self) -> str:
        return (
            f"Sample(filter={self.filter_rule}, size={self.size}, "
            f"scale={self.scale:.3g}, population={self.population})"
        )
