"""The SampleHandler — paper Section 4.3.

Maintains a set of :class:`~repro.sampling.sample.Sample` objects in a
tuple-budget ``M`` and serves every drill-down's need for a uniform
sample of the clicked rule's cover, preferring cheap mechanisms:

* **Find** — an existing sample with exactly this filter rule and
  ≥ ``minSS`` tuples;
* **Combine** — tuples covered by the rule, pooled from all samples
  whose filter is a sub-rule (each such sample restricted to the rule's
  cover is uniform over it); pooled rows are de-duplicated by global
  row id and the pool's scale is estimated from the contributors;
* **Create** — one metered streaming pass over the
  :class:`~repro.storage.DiskTable`, reservoir-sampling *every*
  requested rule simultaneously (the paper's "create a sample of size
  n_r for each displayed r in a single pass") and recording exact
  cover counts as scale factors.

Allocation of the Create pass's sizes delegates to the Section 4.1 DP
(:func:`repro.sampling.allocation.allocate_dp`) or the Section 4.2
convex relaxation, per the ``allocator`` argument.  ``prefetch`` runs
the same machinery ahead of the user's next click (§4.3 Pre-fetching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Mapping, Sequence

import numpy as np

from repro.core.rule import Rule, cover_mask
from repro.errors import SamplingError
from repro.sampling.allocation import GroupSpec, LeafSpec, allocate_dp
from repro.sampling.convex import problem_from_groups, solve_lp
from repro.sampling.reservoir import MultiReservoir
from repro.sampling.sample import Sample
from repro.storage.disk import DiskTable

__all__ = ["AccessEvent", "SampleHandler"]

Method = Literal["find", "combine", "create"]


@dataclass(frozen=True)
class AccessEvent:
    """Log entry for one ``get_sample`` call (drives the experiments)."""

    rule: Rule
    method: Method
    sample_size: int
    simulated_seconds: float
    prefetched: bool = False


class SampleHandler:
    """Creates, maintains, retrieves and evicts samples (§4.3).

    Parameters
    ----------
    source:
        The disk-resident table.
    memory_capacity:
        ``M`` — total tuples across all retained samples.
    min_sample_size:
        ``minSS`` — the smallest sample BRS may run on.
    allocator:
        ``"dp"`` (Section 4.1) or ``"convex"`` (Section 4.2 LP) for
        Create-pass size allocation.
    oversample:
        Create passes draw the clicked rule's sample at
        ``oversample × minSS`` (capped by the budget).  Samples sized
        at exactly ``minSS`` could never serve a *strict* sub-drill via
        Combine — restricting them always loses tuples — so headroom is
        what makes the paper's Find/Combine fast path reachable
        (its defaults leave ``M = 10 × minSS`` of room).
    budget_unit:
        ``"tuples"`` (the paper's headline accounting) or ``"cells"``
        (the §4.2 storage optimisation: columns fixed by a sample's
        filter rule cost nothing, so deeper samples are cheaper and
        more of them fit in the same budget).
    rng:
        Seeded generator; all sampling randomness flows through it.
    """

    def __init__(
        self,
        source: DiskTable,
        *,
        memory_capacity: int = 50_000,
        min_sample_size: int = 5_000,
        allocator: Literal["dp", "convex"] = "dp",
        oversample: float = 3.0,
        budget_unit: Literal["tuples", "cells"] = "tuples",
        rng: np.random.Generator | None = None,
    ):
        if min_sample_size < 1:
            raise SamplingError("min_sample_size must be >= 1")
        if memory_capacity < min_sample_size:
            raise SamplingError("memory_capacity must be >= min_sample_size")
        if oversample < 1.0:
            raise SamplingError("oversample must be >= 1")
        if budget_unit not in ("tuples", "cells"):
            raise SamplingError("budget_unit must be 'tuples' or 'cells'")
        self._source = source
        self.memory_capacity = memory_capacity
        self.min_sample_size = min_sample_size
        self.allocator = allocator
        self.oversample = oversample
        self.budget_unit = budget_unit
        self._rng = rng or np.random.default_rng(0)
        self._samples: dict[Rule, Sample] = {}
        self._access_order: list[Rule] = []  # LRU, most recent last
        self.events: list[AccessEvent] = []

    # -- introspection --------------------------------------------------------

    @property
    def source(self) -> DiskTable:
        return self._source

    @property
    def samples(self) -> Mapping[Rule, Sample]:
        return dict(self._samples)

    def memory_used(self) -> int:
        """Current budget usage, in :attr:`budget_unit` units."""
        if self.budget_unit == "cells":
            return sum(s.memory_cells() for s in self._samples.values())
        return sum(s.memory_tuples() for s in self._samples.values())

    # -- internal bookkeeping ---------------------------------------------------

    def _touch(self, rule: Rule) -> None:
        if rule in self._access_order:
            self._access_order.remove(rule)
        self._access_order.append(rule)

    def _store(self, sample: Sample, *, protected: Sequence[Rule] = ()) -> None:
        self._samples[sample.filter_rule] = sample
        self._touch(sample.filter_rule)
        self._evict(protected=protected)

    def _evict(self, *, protected: Sequence[Rule] = ()) -> None:
        """Drop least-recently-used samples until within the budget."""
        protected_set = set(protected)
        while self.memory_used() > self.memory_capacity:
            victim = next(
                (r for r in self._access_order if r not in protected_set),
                None,
            )
            if victim is None:
                # Everything is protected; shrink the largest protected
                # sample rather than exceed the budget.
                largest = max(self._samples.values(), key=lambda s: s.size)
                self._shrink(largest)
                continue
            self._access_order.remove(victim)
            del self._samples[victim]

    def _shrink(self, sample: Sample) -> None:
        overshoot = self.memory_used() - self.memory_capacity
        keep = max(sample.size - overshoot, self.min_sample_size)
        if keep >= sample.size:
            raise SamplingError("memory budget too small for the protected samples")
        idx = np.sort(self._rng.choice(sample.size, size=keep, replace=False))
        shrunk = Sample(
            filter_rule=sample.filter_rule,
            scale=sample.population / keep if keep else sample.scale,
            table=sample.table.take(idx),
            row_ids=sample.row_ids[idx],
            population=sample.population,
        )
        self._samples[sample.filter_rule] = shrunk

    def _create_size(self) -> int:
        """Sample size for a directly requested Create (with headroom)."""
        return max(
            self.min_sample_size,
            min(int(self.min_sample_size * self.oversample), self.memory_capacity),
        )

    # -- the three mechanisms -----------------------------------------------------

    def _find(self, rule: Rule) -> Sample | None:
        """Find: an existing sample with this exact filter and ≥ minSS rows."""
        sample = self._samples.get(rule)
        if sample is not None and sample.size >= self.min_sample_size:
            self._touch(rule)
            return sample
        return None

    def _combine(self, rule: Rule) -> Sample | None:
        """Combine: pool covered tuples from sub-rule-filtered samples.

        Every sample whose filter is a sub-rule of ``rule`` covers a
        superset of ``rule``'s tuples, so its restriction to the cover
        is a uniform sample of it.  Pooled rows are de-duplicated by
        row id; the pooled scale is ``(estimated cover count) / (pool
        size)``, with the cover count estimated from the largest
        contributor (lowest-variance single estimate).
        """
        contributors = [
            s for s in self._samples.values() if s.filter_rule.is_subrule_of(rule)
        ]
        if not contributors:
            return None
        # Deduplicate by row id, preferring the first occurrence; take the
        # cover-count estimate from the largest contributor.
        seen: set[int] = set()
        pooled_ids: list[int] = []
        pooled_tables = []
        best_estimate = 0.0
        best_size = -1
        for sample in contributors:
            ids, covered_table = sample.restrict(rule)
            if sample.size > best_size:
                best_size = sample.size
                best_estimate = ids.size * sample.scale
            fresh_positions = [i for i, rid in enumerate(ids) if int(rid) not in seen]
            if fresh_positions:
                seen.update(int(ids[i]) for i in fresh_positions)
                pooled_ids.extend(int(ids[i]) for i in fresh_positions)
                pooled_tables.append(
                    covered_table.take(np.asarray(fresh_positions, dtype=np.int64))
                )
        total = len(pooled_ids)
        if total < self.min_sample_size:
            return None
        pooled = pooled_tables[0]
        for extra in pooled_tables[1:]:
            pooled = pooled.concat(extra)
        population = max(int(round(best_estimate)), total)
        combined = Sample(
            filter_rule=rule,
            scale=population / total,
            table=pooled,
            row_ids=np.asarray(pooled_ids, dtype=np.int64),
            population=population,
        )
        self._store(combined)
        return combined

    def _create(
        self,
        rules: Mapping[Rule, int],
        *,
        protected: Sequence[Rule] = (),
    ) -> dict[Rule, Sample]:
        """Create: one metered pass building a sample per requested rule."""
        capacities = {rule: max(size, 1) for rule, size in rules.items()}
        reservoir = MultiReservoir(capacities, self._rng)
        scan = self._source.scan()
        for row_ids, chunk in scan:
            reservoir.offer_chunk(row_ids, chunk)
        counts = reservoir.counts()
        created: dict[Rule, Sample] = {}
        for rule, ids in reservoir.results().items():
            population = counts[rule]
            if ids.size == 0:
                continue
            table = self._source.fetch_buffered(ids)
            sample = Sample(
                filter_rule=rule,
                scale=population / ids.size,
                table=table,
                row_ids=ids,
                population=population,
            )
            self._store(sample, protected=list(protected) + list(rules))
            created[rule] = sample
        return created

    # -- public API ------------------------------------------------------------------

    def get_sample(
        self,
        rule: Rule,
        *,
        co_create: Mapping[Rule, int] | None = None,
        prefetched: bool = False,
    ) -> tuple[Sample, Method]:
        """Return a ≥ ``minSS`` uniform sample of ``rule``'s cover.

        Tries Find, then Combine, then a metered Create pass.  When the
        pass happens anyway, ``co_create`` rules are sampled in the
        same pass at the given sizes (the §4.3 batching optimisation).
        """
        before = self._source.io_stats.simulated_seconds
        sample = self._find(rule)
        method: Method = "find"
        if sample is None:
            sample = self._combine(rule)
            method = "combine"
        if sample is None:
            method = "create"
            requests: dict[Rule, int] = {rule: self._create_size()}
            for extra, size in (co_create or {}).items():
                if extra != rule and size > 0:
                    requests[extra] = size
            created = self._create(requests)
            sample = created.get(rule)
            if sample is None or sample.size == 0:
                raise SamplingError(f"rule {rule} covers no tuples; cannot sample")
        elapsed = self._source.io_stats.simulated_seconds - before
        self.events.append(
            AccessEvent(
                rule=rule,
                method=method,
                sample_size=sample.size,
                simulated_seconds=elapsed,
                prefetched=prefetched,
            )
        )
        return sample, method

    def exact_counts(self, rules: Sequence[Rule]) -> dict[Rule, int]:
        """Exact cover counts for ``rules`` in one metered pass (§4.3).

        The paper piggy-backs this on background Create passes: "while
        we are making the pass in the background, we can find the exact
        counts for currently displayed rules … and update them when our
        pass is complete".  Zero-capacity reservoirs reuse the
        MultiReservoir counting path without storing any tuples.
        """
        if not rules:
            return {}
        reservoir = MultiReservoir({rule: 0 for rule in rules}, self._rng)
        for row_ids, chunk in self._source.scan():
            reservoir.offer_chunk(row_ids, chunk)
        return reservoir.counts()

    def effective_sample_size(self, rule: Rule) -> int:
        """``ess(rule)``: tuples available for ``rule`` without disk I/O."""
        seen: set[int] = set()
        for sample in self._samples.values():
            if sample.filter_rule.is_subrule_of(rule):
                ids, _ = sample.restrict(rule)
                seen.update(int(i) for i in ids)
        return len(seen)

    def plan_allocation(
        self,
        groups: Sequence[GroupSpec],
        *,
        min_sample_size: int | None = None,
    ) -> dict[str, int]:
        """Allocate Create-pass sizes for a displayed tree (§4.1/§4.2)."""
        if not groups:
            return {}
        target = min_sample_size or self.min_sample_size
        if self.allocator == "convex":
            problem = problem_from_groups(groups, self.memory_capacity, target)
            return solve_lp(problem).rounded_sizes()
        result = allocate_dp(groups, self.memory_capacity, target)
        return result.sizes

    def prefetch(
        self,
        parent: Rule,
        leaves: Sequence[Rule],
        *,
        probabilities: Sequence[float] | None = None,
        safety: float = 1.2,
    ) -> dict[Rule, Sample]:
        """Pre-fetch samples for likely next drill-downs (§4.3).

        Estimates selectivities from the parent's sample, allocates
        sizes with the configured allocator, and runs one Create pass
        for the leaves that cannot already be served from memory.
        Returns the newly created samples.

        ``safety`` inflates the planning target above ``minSS``: the
        allocation model counts *expected* parent-sample contributions
        (``S·n_parent``), but the realised contribution is binomial, so
        planning at exactly ``minSS`` misses it about half the time.
        """
        probs = (
            list(probabilities)
            if probabilities is not None
            else [1.0 / len(leaves)] * len(leaves)
        )
        if len(probs) != len(leaves):
            raise SamplingError("probabilities must align with leaves")
        if safety < 1.0:
            raise SamplingError("safety factor must be >= 1")
        needy = [
            leaf for leaf in leaves if self.effective_sample_size(leaf) < self.min_sample_size
        ]
        if not needy:
            return {}
        prob_of = dict(zip(leaves, probs))
        parent_sample = self._samples.get(parent)
        leaf_specs = []
        for leaf in needy:
            if parent_sample is not None and parent_sample.size:
                covered = float(cover_mask(leaf, parent_sample.table).sum())
                selectivity = max(covered / parent_sample.size, 1e-6)
            else:
                selectivity = 0.1
            leaf_specs.append(
                LeafSpec(
                    name=repr(leaf),
                    probability=prob_of.get(leaf, 0.0),
                    selectivity=min(selectivity, 1.0),
                )
            )
        group = GroupSpec(parent=repr(parent), leaves=tuple(leaf_specs))
        sizes = self.plan_allocation(
            [group], min_sample_size=int(np.ceil(self.min_sample_size * safety))
        )
        requests = {
            leaf: sizes.get(repr(leaf), 0)
            for leaf in needy
            if sizes.get(repr(leaf), 0) > 0
        }
        # The allocator may satisfy a leaf through the *parent's* sample
        # (category 1); grow the parent sample when the plan sizes it
        # beyond what is currently held.
        parent_target = sizes.get(repr(parent), 0)
        current_parent = self._samples.get(parent)
        if parent_target > (current_parent.size if current_parent else 0):
            requests[parent] = parent_target
        if not requests:
            return {}
        before = self._source.io_stats.simulated_seconds
        created = self._create(requests)
        elapsed = self._source.io_stats.simulated_seconds - before
        for rule, sample in created.items():
            self.events.append(
                AccessEvent(
                    rule=rule,
                    method="create",
                    sample_size=sample.size,
                    simulated_seconds=elapsed / max(len(created), 1),
                    prefetched=True,
                )
            )
        return created
