"""Constructive NP-hardness reductions (paper Lemmas 2 and 4)."""

from repro.hardness.knapsack import (
    KnapsackInstance,
    allocation_to_knapsack_choice,
    knapsack_to_allocation,
    solve_knapsack_dp,
    solve_knapsack_exhaustive,
)
from repro.hardness.max_coverage import (
    MCPInstance,
    exact_mcp,
    greedy_mcp,
    mcp_to_table,
    mcp_weight_function,
    rules_to_subset_choice,
)

__all__ = [
    "KnapsackInstance",
    "MCPInstance",
    "allocation_to_knapsack_choice",
    "exact_mcp",
    "greedy_mcp",
    "knapsack_to_allocation",
    "mcp_to_table",
    "mcp_weight_function",
    "rules_to_subset_choice",
    "solve_knapsack_dp",
    "solve_knapsack_exhaustive",
]
