"""Maximum Coverage and the Lemma 2 reduction (paper Section 3.2).

The paper proves Problem 3 NP-hard by encoding a Maximum Coverage
instance as a table: one row per universe element, one binary column
per subset, and the weight function "1 if the rule instantiates at
least one ``1``, else 0".  Selecting ``k`` rules under ``Score`` then
equals selecting ``k`` subsets maximising their union.

This module implements the MCP itself (exact and greedy solvers) plus
the reduction, so tests can verify the equivalence constructively —
the strongest executable form of the hardness argument.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.rule import Rule, Wildcard
from repro.core.weights import CallableWeight, WeightFunction
from repro.errors import ReproError
from repro.table.schema import Schema
from repro.table.table import Table

__all__ = [
    "MCPInstance",
    "greedy_mcp",
    "exact_mcp",
    "mcp_to_table",
    "mcp_weight_function",
    "rules_to_subset_choice",
]


@dataclass(frozen=True)
class MCPInstance:
    """A Maximum Coverage instance: universe ``{0..n-1}`` and subsets."""

    universe_size: int
    subsets: tuple[frozenset[int], ...]
    k: int

    def __post_init__(self) -> None:
        if self.universe_size < 0 or self.k < 0:
            raise ReproError("universe_size and k must be non-negative")
        for s in self.subsets:
            if any(not 0 <= e < self.universe_size for e in s):
                raise ReproError("subset element outside the universe")

    @classmethod
    def of(cls, universe_size: int, subsets: Iterable[Iterable[int]], k: int) -> "MCPInstance":
        return cls(universe_size, tuple(frozenset(s) for s in subsets), k)

    def coverage(self, chosen: Sequence[int]) -> int:
        """``|∪_{i∈chosen} S_i|``."""
        covered: set[int] = set()
        for i in chosen:
            covered |= self.subsets[i]
        return len(covered)


def greedy_mcp(instance: MCPInstance) -> tuple[list[int], int]:
    """The classic greedy ``(1 − 1/e)``-approximation for MCP.

    Ties break toward the lowest subset index (deterministic, matching
    the reduced rule search's tie-break toward smaller rules).
    """
    covered: set[int] = set()
    chosen: list[int] = []
    for _ in range(min(instance.k, len(instance.subsets))):
        best_i = -1
        best_gain = 0
        for i, subset in enumerate(instance.subsets):
            if i in chosen:
                continue
            gain = len(subset - covered)
            if gain > best_gain:
                best_gain = gain
                best_i = i
        if best_i < 0:
            break
        chosen.append(best_i)
        covered |= instance.subsets[best_i]
    return chosen, len(covered)


def exact_mcp(instance: MCPInstance) -> tuple[tuple[int, ...], int]:
    """Exhaustive optimal MCP (exponential; tiny instances only)."""
    best: tuple[tuple[int, ...], int] = ((), 0)
    indexes = range(len(instance.subsets))
    for size in range(1, min(instance.k, len(instance.subsets)) + 1):
        for combo in itertools.combinations(indexes, size):
            cov = instance.coverage(combo)
            if cov > best[1]:
                best = (combo, cov)
    return best


def mcp_to_table(instance: MCPInstance) -> Table:
    """Lemma 2's table: row per element, binary column per subset.

    Cell ``(i, j)`` is 1 iff element ``i`` belongs to subset ``S_j``.
    """
    names = [f"S{j}" for j in range(len(instance.subsets))]
    rows = [
        tuple(1 if i in s else 0 for s in instance.subsets)
        for i in range(instance.universe_size)
    ]
    return Table.from_rows(Schema.categorical(names), rows)


def mcp_weight_function() -> WeightFunction:
    """Lemma 2's weight: 1 if the rule has at least one ``1``, else 0.

    Deliberately *value-dependent* (it inspects rule values, not just
    the instantiated column set), so the reduction also exercises the
    marginal search's slow path.
    """

    def weight(rule: Rule) -> float:
        return 1.0 if any(
            not isinstance(v, Wildcard) and v == 1 for v in rule.values
        ) else 0.0

    return CallableWeight(weight, name="mcp-indicator")


def rules_to_subset_choice(rules: Iterable[Rule]) -> list[int]:
    """Map selected rules back to MCP subset indexes.

    A rule contributes the subsets of the columns where it has a 1; in
    an optimal/greedy solution each rule has exactly one 1 (a rule with
    several is dominated by its single-1 sub-rule), but the mapping
    tolerates more.
    """
    chosen: list[int] = []
    for rule in rules:
        for idx, value in rule.items():
            if value == 1 and idx not in chosen:
                chosen.append(idx)
    return chosen
