"""0/1 Knapsack and the Lemma 4 reduction (paper Section 4.1).

The paper proves the sample-allocation Problem 5 NP-hard by encoding a
knapsack instance as a rule tree: one special internal node ``r_i`` per
object, each with two leaf children — ``r_{i,1}`` (selectivity 1,
"must-satisfy" probability weight) and ``r_{i,2}`` (selectivity
``1 − w_i``, probability proportional to the object's value ``v_i``).
Satisfying ``r_{i,2}`` on top of ``r_{i,1}`` costs exactly ``w_i·minSS``
extra memory and earns value proportional to ``v_i`` — i.e., *is*
picking object ``i``.

This module implements knapsack itself (exact DP and greedy) plus the
constructive reduction to :class:`~repro.sampling.allocation.GroupSpec`
instances, which tests solve with the allocation DP and compare against
the knapsack DP.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError
from repro.sampling.allocation import GroupSpec, LeafSpec

__all__ = [
    "KnapsackInstance",
    "solve_knapsack_dp",
    "solve_knapsack_exhaustive",
    "knapsack_to_allocation",
    "allocation_to_knapsack_choice",
]


@dataclass(frozen=True)
class KnapsackInstance:
    """0/1 knapsack: integer weights, non-negative values, capacity."""

    weights: tuple[int, ...]
    values: tuple[float, ...]
    capacity: int

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.values):
            raise ReproError("weights and values must align")
        if any(w <= 0 for w in self.weights):
            raise ReproError("weights must be positive integers")
        if any(v < 0 for v in self.values):
            raise ReproError("values must be non-negative")
        if self.capacity < 0:
            raise ReproError("capacity must be non-negative")

    @property
    def n(self) -> int:
        return len(self.weights)

    def total_value(self, chosen: Sequence[int]) -> float:
        return float(sum(self.values[i] for i in chosen))

    def total_weight(self, chosen: Sequence[int]) -> int:
        return int(sum(self.weights[i] for i in chosen))


def solve_knapsack_dp(instance: KnapsackInstance) -> tuple[list[int], float]:
    """Exact knapsack via the standard ``O(n·W)`` value table."""
    cap = instance.capacity
    table = [[0.0] * (cap + 1) for _ in range(instance.n + 1)]
    for i in range(1, instance.n + 1):
        w, v = instance.weights[i - 1], instance.values[i - 1]
        prev = table[i - 1]
        cur = table[i]
        for j in range(cap + 1):
            cur[j] = prev[j]
            if w <= j and prev[j - w] + v > cur[j]:
                cur[j] = prev[j - w] + v
    # Reconstruct.
    chosen: list[int] = []
    j = cap
    for i in range(instance.n, 0, -1):
        if table[i][j] != table[i - 1][j]:
            chosen.append(i - 1)
            j -= instance.weights[i - 1]
    chosen.reverse()
    return chosen, table[instance.n][cap]


def solve_knapsack_exhaustive(instance: KnapsackInstance) -> tuple[tuple[int, ...], float]:
    """Brute-force optimum (tiny instances; validates the DP)."""
    best: tuple[tuple[int, ...], float] = ((), 0.0)
    for size in range(1, instance.n + 1):
        for combo in itertools.combinations(range(instance.n), size):
            if instance.total_weight(combo) <= instance.capacity:
                value = instance.total_value(combo)
                if value > best[1]:
                    best = (combo, value)
    return best


def knapsack_to_allocation(
    instance: KnapsackInstance,
    *,
    min_sample_size: int = 1000,
) -> tuple[list[GroupSpec], int]:
    """Lemma 4's reduction: knapsack → allocation groups + memory budget.

    Object weights are normalised into ``(0, 1)`` (the proof's scaling
    step); the returned memory budget is ``(m + W̃)·minSS`` where ``W̃``
    is the scaled capacity, so that after the ``m`` mandatory leaves
    are satisfied, exactly ``W̃·minSS`` spare tuples remain for the
    optional ones.
    """
    m = instance.n
    scale = 2.0 * max(max(instance.weights), instance.capacity, 1)
    scaled_weights = [w / scale for w in instance.weights]
    scaled_capacity = instance.capacity / scale
    total_value = sum(instance.values) or 1.0

    groups: list[GroupSpec] = []
    # Probabilities: each mandatory leaf gets mass 2/(2m+1) — any
    # solution must satisfy all of them first — and optional leaf i
    # splits the remaining 1/(2m+1) in proportion to v_i.
    mandatory_p = 2.0 / (2 * m + 1)
    optional_total = 1.0 / (2 * m + 1)
    for i in range(m):
        mandatory = LeafSpec(name=f"r{i}_must", probability=mandatory_p / 1.0, selectivity=1.0)
        optional = LeafSpec(
            name=f"r{i}_opt",
            probability=optional_total * instance.values[i] / total_value,
            selectivity=max(1.0 - scaled_weights[i], 1e-9),
        )
        groups.append(GroupSpec(parent=f"r{i}", leaves=(mandatory, optional)))
    memory = int(round((m + scaled_capacity) * min_sample_size))
    return groups, memory


def allocation_to_knapsack_choice(
    groups: Sequence[GroupSpec],
    sizes: dict[str, int],
    min_sample_size: int,
) -> list[int]:
    """Read the chosen objects back off an allocation's sizes.

    Object ``i`` is picked iff its optional leaf ``r{i}_opt`` reaches
    ``ess ≥ minSS`` under the parent-plus-own-sample model.
    """
    chosen: list[int] = []
    for i, group in enumerate(groups):
        parent_size = sizes.get(group.parent, 0)
        optional = group.leaves[1]
        ess = sizes.get(optional.name, 0) + parent_size * optional.selectivity
        if ess >= min_sample_size - 1e-6:
            chosen.append(i)
    return chosen
