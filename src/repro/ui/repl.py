"""A terminal REPL over :class:`~repro.session.DrillDownSession`.

The paper demonstrates a web prototype; this is the same interaction
loop on a terminal — rows are addressed by their display index, and the
commands mirror the paper's clicks:

=====================  ====================================================
``show``               re-print the current table
``expand N``           smart drill-down on row ``N`` (click the rule)
``star N COLUMN``      star drill-down on ``COLUMN`` of row ``N``
``trad N COLUMN``      traditional drill-down on ``COLUMN`` of row ``N``
``collapse N``         roll up row ``N``
``k VALUE``            change the rules-per-expansion parameter
``help`` / ``quit``    the obvious
=====================  ====================================================

All I/O goes through injected streams, so the loop is unit-testable
with ``io.StringIO`` scripts.
"""

from __future__ import annotations

import io
import sys
from typing import TextIO

from repro.errors import ReproError, SessionError
from repro.session.session import DrillDownSession

__all__ = ["ExplorerREPL"]

_HELP = """commands:
  show                 print the current rule table
  expand N             smart drill-down on display row N
  star N COLUMN        star drill-down on COLUMN of row N
  trad N COLUMN        traditional drill-down on COLUMN of row N
  collapse N           collapse row N
  k VALUE              set rules-per-expansion
  favor COLUMN [X]     weight COLUMN X times higher (default 2)
  ignore COLUMN        zero COLUMN's weight contribution
  refresh              replace estimated counts with exact counts
  help                 this message
  quit                 exit"""


class ExplorerREPL:
    """Line-oriented explorer bound to one session."""

    def __init__(
        self,
        session: DrillDownSession,
        *,
        input_stream: TextIO | None = None,
        output_stream: TextIO | None = None,
    ):
        self.session = session
        self._in = input_stream or sys.stdin
        self._out = output_stream or sys.stdout

    # -- helpers ---------------------------------------------------------------

    def _print(self, text: str) -> None:
        self._out.write(text + "\n")

    def _show(self) -> None:
        self._print(self.session.to_text())

    def _row(self, token: str):
        try:
            index = int(token)
        except ValueError:
            raise SessionError(f"row index must be an integer, got {token!r}") from None
        nodes = self.session.displayed()
        if not 0 <= index < len(nodes):
            raise SessionError(f"row {index} out of range (0..{len(nodes) - 1})")
        return nodes[index]

    def _adjust_preference(self, command: str, args: list[str]) -> None:
        """§6.1 favor/ignore: rescale one column's weight contribution."""
        from repro.core.weights import adjust_column_preference

        column_names = self.session.column_names
        if args[0] not in column_names:
            raise SessionError(f"unknown column {args[0]!r}")
        column = column_names.index(args[0])
        if command == "ignore":
            factor = 0.0
        else:
            factor = float(args[1]) if len(args) > 1 else 2.0
        self.session.wf = adjust_column_preference(
            self.session.wf, column, factor, len(column_names)
        )
        verb = "favoring" if command == "favor" else "ignoring"
        self._print(f"{verb} column {args[0]!r} (factor {factor:g})")

    # -- command dispatch ----------------------------------------------------------

    def handle(self, line: str) -> bool:
        """Execute one command line; returns False when the loop should end."""
        parts = line.strip().split()
        if not parts:
            return True
        command, args = parts[0].lower(), parts[1:]
        try:
            if command in ("quit", "exit", "q"):
                return False
            if command == "help":
                self._print(_HELP)
            elif command == "show":
                self._show()
            elif command == "expand":
                node = self._row(args[0])
                self.session.expand(node.rule)
                self._show()
            elif command == "star":
                node = self._row(args[0])
                self.session.expand_star(node.rule, args[1])
                self._show()
            elif command == "trad":
                node = self._row(args[0])
                self.session.expand_traditional(node.rule, args[1])
                self._show()
            elif command == "collapse":
                node = self._row(args[0])
                self.session.collapse(node.rule)
                self._show()
            elif command == "k":
                value = int(args[0])
                if value < 1:
                    raise SessionError("k must be >= 1")
                self.session.k = value
                self._print(f"k = {value}")
            elif command in ("favor", "ignore"):
                self._adjust_preference(command, args)
            elif command == "refresh":
                deltas = self.session.refresh_exact_counts()
                self._print(f"refreshed {len(deltas)} count(s)")
                self._show()
            else:
                self._print(f"unknown command: {command} (try 'help')")
        except IndexError:
            self._print(f"missing argument for {command!r} (try 'help')")
        except (ReproError, ValueError) as exc:
            self._print(f"error: {exc}")
        return True

    def run(self) -> None:
        """Read-eval-print until EOF or ``quit``."""
        self._print("smart drill-down explorer — 'help' lists commands")
        self._show()
        for line in self._in:
            if not self.handle(line):
                break
            self._out.flush()
