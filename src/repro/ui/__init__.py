"""Text rendering and the terminal explorer (the prototype front-end)."""

from repro.ui.render import format_count, render_rows, render_rule_list, render_session
from repro.ui.repl import ExplorerREPL

__all__ = [
    "ExplorerREPL",
    "format_count",
    "render_rows",
    "render_rule_list",
    "render_session",
]
