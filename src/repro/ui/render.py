"""ASCII rendering of rule-lists and sessions in the paper's table style.

The paper's Tables 1–3 display rules as rows whose first column is
prefixed with one ``.`` per tree depth, followed by the data columns
(``?`` for wildcards), Count and Weight.  These renderers emit exactly
that layout so example scripts and benchmark transcripts read like the
paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.rule import Rule, Wildcard
from repro.core.scoring import RuleList, ScoredRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.session import DrillDownSession, SessionNode

__all__ = ["format_count", "render_rows", "render_rule_list", "render_session"]


def format_count(count: float) -> str:
    """Counts display as integers when integral, else one decimal."""
    if abs(count - round(count)) < 1e-9:
        return str(int(round(count)))
    return f"{count:.1f}"


def _rule_cells(rule: Rule, depth: int) -> list[str]:
    cells = ["?" if isinstance(v, Wildcard) else str(v) for v in rule.values]
    if depth > 0:
        cells[0] = ". " * depth + cells[0]
    return cells


def render_rows(
    column_names: Sequence[str],
    rows: Iterable[tuple[int, Rule, float, float]],
) -> str:
    """Render ``(depth, rule, count, weight)`` rows as an aligned table."""
    header = list(column_names) + ["Count", "Weight"]
    body: list[list[str]] = []
    for depth, rule, count, weight in rows:
        body.append(_rule_cells(rule, depth) + [format_count(count), format_count(weight)])
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_rule_list(
    column_names: Sequence[str],
    rule_list: RuleList | Iterable[ScoredRule],
    *,
    depth: int = 0,
) -> str:
    """Render a flat rule-list (no tree context)."""
    entries = list(rule_list)
    return render_rows(
        column_names,
        ((depth, e.rule, e.count, e.weight) for e in entries),
    )


def render_session(
    session: "DrillDownSession", *, sort_display_by_count: bool = False
) -> str:
    """Render the session's displayed tree in the paper's layout.

    ``sort_display_by_count`` orders siblings by descending count (the
    prototype screenshots' order); the default keeps the Lemma 1
    weight-descending order of the tables in the paper body.
    """

    rows: list[tuple[int, Rule, float, float]] = []

    def walk(node: "SessionNode") -> None:
        rows.append((node.depth, node.rule, node.count, node.weight))
        children = node.children
        if sort_display_by_count:
            children = sorted(children, key=lambda c: -c.count)
        for child in children:
            walk(child)

    walk(session.root)
    return render_rows(session.column_names, rows)
