"""Qualitative study runners — paper Section 5.1 (Tables 1–3, Figures 1–4, 6, 7).

Each function reproduces one interaction transcript on the synthetic
datasets and returns both the structured result and a rendered text
table, so benchmarks can assert on the rules and EXPERIMENTS.md can
quote the output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.brs import brs
from repro.core.drilldown import rule_drilldown, star_drilldown, traditional_drilldown
from repro.core.rule import Rule
from repro.core.scoring import RuleList
from repro.core.weights import BitsWeight, SizeMinusOneWeight, SizeWeight, WeightFunction
from repro.datasets.marketing import generate_marketing
from repro.datasets.retail import generate_retail
from repro.table.table import Table
from repro.ui.render import render_rule_list

__all__ = [
    "MARKETING_7_COLUMNS",
    "QualitativeResult",
    "marketing_first_seven",
    "run_tables_1_2_3",
    "run_fig1_empty_rule",
    "run_fig2_star_education",
    "run_fig3_rule_expansion",
    "run_fig4_traditional_age",
    "run_fig6_bits",
    "run_fig7_size_minus_one",
]

#: Section 5's display restriction: "we restrict the tables to the
#: first 7 columns in order to make the result tables fit in the page".
MARKETING_7_COLUMNS = (
    "Income",
    "Sex",
    "MaritalStatus",
    "Age",
    "Education",
    "Occupation",
    "TimeInBayArea",
)


@dataclass(frozen=True)
class QualitativeResult:
    """A reproduced transcript: the rule list plus its rendering."""

    name: str
    rule_list: RuleList
    text: str

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self.rule_list.rules


def marketing_first_seven(seed: int = 42) -> Table:
    """The Marketing table restricted to the paper's 7 display columns."""
    return generate_marketing(seed).select(list(MARKETING_7_COLUMNS))


def _result(name: str, table: Table, rule_list: RuleList) -> QualitativeResult:
    return QualitativeResult(
        name=name,
        rule_list=rule_list,
        text=render_rule_list(table.column_names, rule_list),
    )


def run_tables_1_2_3(seed: int = 7) -> tuple[QualitativeResult, QualitativeResult]:
    """Tables 2 and 3: the retail transcript (Table 1 is the trivial row).

    Returns (first smart drill-down, Walmart expansion).
    """
    retail = generate_retail(seed)
    wf = SizeWeight()
    first = brs(retail, wf, 3, 3.0).rule_list
    walmart = Rule.from_named(retail, Store="Walmart")
    second = rule_drilldown(retail, walmart, wf, 3, 3.0).rule_list
    return (
        _result("Table 2 (first smart drill-down)", retail, first),
        _result("Table 3 (expansion of the Walmart rule)", retail, second),
    )


def run_fig1_empty_rule(seed: int = 42, *, k: int = 4, mw: float = 5.0) -> QualitativeResult:
    """Figure 1: summary after expanding the empty rule (Size weighting)."""
    table = marketing_first_seven(seed)
    result = brs(table, SizeWeight(), k, mw)
    return _result("Figure 1 (empty-rule expansion, Size weighting)", table, result.rule_list)


def run_fig2_star_education(seed: int = 42, *, k: int = 4, mw: float = 5.0) -> QualitativeResult:
    """Figure 2: star drill-down on Education of the Female rule.

    The paper expands the ``?`` in the Education column of the
    ``(?, Female, …)`` rule, listing the most frequent education levels
    among females.
    """
    table = marketing_first_seven(seed)
    female = Rule.from_named(table, Sex="Female")
    result = star_drilldown(table, female, "Education", SizeWeight(), k, mw)
    return _result("Figure 2 (star expansion on Education)", table, result.rule_list)


def run_fig3_rule_expansion(seed: int = 42, *, k: int = 4, mw: float = 5.0) -> QualitativeResult:
    """Figure 3: expanding a Figure 1 rule (the Female/>10-years rule)."""
    table = marketing_first_seven(seed)
    rule = Rule.from_named(table, Sex="Female", TimeInBayArea=">10 years")
    result = rule_drilldown(table, rule, SizeWeight(), k, mw)
    return _result("Figure 3 (rule expansion)", table, result.rule_list)


def run_fig4_traditional_age(seed: int = 42) -> QualitativeResult:
    """Figure 4: a regular drill-down on the Age column.

    Every distinct Age value becomes a rule — the weighting-function
    special case of Section 5.1.
    """
    table = marketing_first_seven(seed)
    result = traditional_drilldown(table, Rule.trivial(table.n_columns), "Age")
    return _result("Figure 4 (regular drill-down on Age)", table, result.rule_list)


def run_fig6_bits(seed: int = 42, *, k: int = 4, mw: float = 20.0) -> QualitativeResult:
    """Figure 6: Bits weighting avoids low-information binary columns."""
    table = marketing_first_seven(seed)
    result = brs(table, BitsWeight.for_table(table), k, mw)
    return _result("Figure 6 (Bits weighting)", table, result.rule_list)


def run_fig7_size_minus_one(seed: int = 42, *, k: int = 4, mw: float = 5.0) -> QualitativeResult:
    """Figure 7: max(0, Size−1) weighting forces ≥ 2 instantiated columns."""
    table = marketing_first_seven(seed)
    result = brs(table, SizeMinusOneWeight(), k, mw)
    return _result("Figure 7 (Size-minus-one weighting)", table, result.rule_list)
