"""Performance study runners — paper Section 5.2 (Figures 5, 8; §5.2.3).

The measured quantities mirror the paper:

* **Figure 5** — wall time to expand the empty rule as a function of
  the ``mw`` parameter, for {Marketing, Census} × {Size, Bits}.
* **Figure 8(a–c)** — time, count error, and incorrect-rule count as a
  function of ``minSS``.
* **Section 5.2.3** — runtime scaling ``a·|T| + b·minSS``: the Create
  pass is linear in the table and BRS is linear in the sample.

Absolute numbers differ from the paper's 2011 laptop; the benchmarks
assert the *shapes* (monotone growth in ``mw``, ``1/√minSS`` error
decay, linear table scaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.brs import brs
from repro.core.rule import Rule, cover_mask
from repro.core.scoring import RuleList
from repro.core.weights import BitsWeight, SizeWeight, WeightFunction
from repro.experiments.common import Series, SeriesPoint, timed
from repro.sampling.estimate import percent_error
from repro.sampling.handler import SampleHandler
from repro.storage.disk import DiskTable
from repro.table.table import Table

__all__ = [
    "weighting_by_name",
    "run_mw_sweep",
    "MinSSPoint",
    "run_minss_sweep",
    "run_scaling_sweep",
    "run_approximation_study",
]


def weighting_by_name(name: str, table: Table) -> WeightFunction:
    """Resolve the two §5.2 weightings by name for a concrete table."""
    if name == "size":
        return SizeWeight()
    if name == "bits":
        return BitsWeight.for_table(table)
    raise ValueError(f"unknown weighting {name!r}")


def run_mw_sweep(
    table: Table,
    weighting: str,
    mw_values: Sequence[float],
    *,
    k: int = 4,
    repeats: int = 3,
    name: str | None = None,
) -> Series:
    """Figure 5: expansion wall-time per ``mw`` value (averaged)."""
    wf = weighting_by_name(weighting, table)
    points = []
    for mw in mw_values:
        total = 0.0
        score = 0.0
        for _ in range(repeats):
            seconds, result = timed(lambda: brs(table, wf, k, mw))
            total += seconds
            score = result.score
        points.append(SeriesPoint(x=float(mw), y=total / repeats, extra={"score": score}))
    return Series(name=name or f"{weighting} weighting", points=tuple(points))


@dataclass(frozen=True)
class MinSSPoint:
    """One Figure 8 measurement at a given ``minSS``."""

    min_sample_size: int
    seconds: float
    percent_error: float
    incorrect_rules: float


def _sample_table(table: Table, size: int, rng: np.random.Generator) -> tuple[Table, float]:
    """Uniform sample (without replacement) and its scale factor."""
    size = min(size, table.n_rows)
    idx = np.sort(rng.choice(table.n_rows, size=size, replace=False))
    return table.take(idx), table.n_rows / size


def run_minss_sweep(
    table: Table,
    weighting: str,
    minss_values: Sequence[int],
    *,
    k: int = 4,
    mw: float = 5.0,
    iterations: int = 10,
    seed: int = 0,
    name: str | None = None,
) -> list[MinSSPoint]:
    """Figure 8(a–c): accuracy/time of BRS on ``minSS``-sized samples.

    Per iteration: draw a fresh uniform sample, expand the empty rule
    on it, and compare against the full-table expansion — the
    percent-error of displayed counts (8b) and the number of displayed
    rules not in the true rule set (8c).
    """
    rng = np.random.default_rng(seed)
    wf = weighting_by_name(weighting, table)
    truth: RuleList = brs(table, wf, k, mw).rule_list
    true_rules = set(truth.rules)
    out: list[MinSSPoint] = []
    for minss in minss_values:
        seconds_sum = 0.0
        error_sum = 0.0
        incorrect_sum = 0.0
        for _ in range(iterations):
            sample, scale = _sample_table(table, minss, rng)
            seconds, result = timed(lambda: brs(sample, wf, k, mw))
            seconds_sum += seconds
            errors = []
            for entry in result.rule_list:
                estimated = entry.count * scale
                actual = float(cover_mask(entry.rule, table).sum())
                errors.append(percent_error(estimated, actual))
            error_sum += float(np.mean(errors)) if errors else 0.0
            displayed = set(result.rule_list.rules)
            incorrect_sum += len(displayed - true_rules)
        out.append(
            MinSSPoint(
                min_sample_size=int(minss),
                seconds=seconds_sum / iterations,
                percent_error=error_sum / iterations,
                incorrect_rules=incorrect_sum / iterations,
            )
        )
    return out


def run_scaling_sweep(
    tables: Sequence[Table],
    *,
    k: int = 4,
    mw: float = 5.0,
    min_sample_size: int = 5_000,
    memory_capacity: int = 50_000,
    page_rows: int = 1_024,
    seed: int = 0,
) -> Series:
    """§5.2.3: full drill-down cost (Create pass + BRS) vs table size.

    Each point runs a fresh SampleHandler so the Create pass is always
    paid; ``y`` is wall seconds, with the simulated disk seconds and
    the sample-only BRS seconds recorded as extras — the ``a·|T|`` and
    ``b·minSS`` terms.  ``page_rows`` is kept small so page-count
    quantisation does not distort the linearity measurement.
    """
    points = []
    for table in tables:
        disk = DiskTable(table, page_rows=page_rows)
        handler = SampleHandler(
            disk,
            memory_capacity=memory_capacity,
            min_sample_size=min(min_sample_size, table.n_rows),
            rng=np.random.default_rng(seed),
        )
        root = Rule.trivial(table.n_columns)

        def expand() -> None:
            sample, _ = handler.get_sample(root)
            brs(sample.table, SizeWeight(), k, mw)

        seconds, _ = timed(expand)
        sample, _ = handler.get_sample(root)  # find: no extra I/O
        brs_seconds, _ = timed(lambda: brs(sample.table, SizeWeight(), k, mw))
        points.append(
            SeriesPoint(
                x=float(table.n_rows),
                y=seconds,
                extra={
                    "simulated_io_seconds": disk.io_stats.simulated_seconds,
                    "brs_only_seconds": brs_seconds,
                },
            )
        )
    return Series(name="drill-down cost vs |T|", points=tuple(points))


def run_approximation_study(
    *,
    n_trials: int = 20,
    n_rows: int = 40,
    n_columns: int = 3,
    domain: int = 3,
    k: int = 3,
    seed: int = 0,
) -> Series:
    """Greedy-vs-optimal score ratios on random tiny tables (X5).

    Submodularity guarantees ``greedy ≥ (1 − (1−1/k)^k) · OPT``; the
    series records the realised ratio per trial (y) so benchmarks can
    assert the bound and report how much better greedy does in
    practice.
    """
    from repro.core.exhaustive import optimal_rule_set
    from repro.datasets.zipf import generate_zipf_table

    rng = np.random.default_rng(seed)
    points = []
    for trial in range(n_trials):
        table = generate_zipf_table(
            n_rows,
            [domain] * n_columns,
            skew=1.0,
            seed=int(rng.integers(1 << 31)),
        )
        wf = SizeWeight()
        greedy_score = brs(table, wf, k, float(n_columns)).score
        optimal = optimal_rule_set(table, wf, k)
        ratio = 1.0 if optimal.score == 0 else greedy_score / optimal.score
        points.append(SeriesPoint(x=float(trial), y=ratio))
    return Series(name="greedy/optimal score ratio", points=tuple(points))
