"""Shared experiment plumbing: timing, series, and report tables.

Every benchmark regenerates one paper table/figure through a runner in
this package; the runners return plain dataclasses so benchmarks can
both assert on shapes (who wins, how curves trend) and print
paper-vs-measured summaries for EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["timed", "SeriesPoint", "Series", "report_table", "trend_slope"]


def timed(fn: Callable[[], object]) -> tuple[float, object]:
    """Run ``fn`` once, returning ``(wall seconds, result)``."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@dataclass(frozen=True)
class SeriesPoint:
    """One (x, y) measurement with optional auxiliary metrics."""

    x: float
    y: float
    extra: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Series:
    """A named measurement series (one line of a paper figure)."""

    name: str
    points: tuple[SeriesPoint, ...]

    @property
    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    @property
    def ys(self) -> list[float]:
        return [p.y for p in self.points]

    def extra(self, key: str) -> list[float]:
        return [p.extra[key] for p in self.points]


def trend_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope — the benchmarks' "does it grow/shrink" check."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size < 2:
        return 0.0
    x_c = x - x.mean()
    denom = float((x_c**2).sum())
    if denom == 0:
        return 0.0
    return float((x_c * (y - y.mean())).sum() / denom)


def report_table(
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Format an aligned text table with a title (experiment transcripts)."""
    body = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
