"""Simulated interaction traces over sampled sessions (§4 motivation).

The paper's sampling design exists to keep *interaction sequences*
responsive: every drill-down the user clicks should be served from
memory (Find/Combine) rather than paying a disk pass (Create).  This
module simulates a user who repeatedly drills into displayed leaves —
choosing proportionally to displayed counts, the assumption behind the
allocation objective — and measures, per memory budget ``M``, how many
clicks were served from memory and how much simulated I/O the session
cost.  It powers the memory-budget benchmark (an extension experiment:
the paper fixes M = 50000 and does not sweep it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SessionError
from repro.session.session import DrillDownSession
from repro.storage.disk import DiskTable
from repro.table.table import Table

__all__ = ["TraceResult", "simulate_exploration", "run_memory_budget_sweep"]


@dataclass(frozen=True)
class TraceResult:
    """Outcome of one simulated exploration."""

    clicks: int
    served_from_memory: int
    created: int
    simulated_io_seconds: float
    wall_seconds: float

    @property
    def memory_hit_rate(self) -> float:
        """Fraction of drill-downs served without a disk pass."""
        return self.served_from_memory / self.clicks if self.clicks else 0.0


def simulate_exploration(
    table: Table,
    *,
    clicks: int = 6,
    k: int = 3,
    mw: float = 5.0,
    memory_capacity: int = 50_000,
    min_sample_size: int = 5_000,
    prefetch: bool = True,
    seed: int = 0,
) -> TraceResult:
    """Drive a sampled session through a random drill-down trace.

    The first click expands the root; every later click picks a
    displayed, unexpanded, expandable leaf with probability
    proportional to its displayed count (the §4.1 leaf-probability
    model) and drills into it.
    """
    rng = np.random.default_rng(seed)
    disk = DiskTable(table)
    session = DrillDownSession(
        disk,
        k=k,
        mw=mw,
        memory_capacity=memory_capacity,
        min_sample_size=min_sample_size,
        rng=rng,
        prefetch=prefetch,
    )
    session.expand(session.root.rule)
    for _ in range(clicks - 1):
        leaves = [
            n
            for n in session.leaves()
            if not n.rule.is_trivial and n.count >= min_sample_size
        ]
        if not leaves:
            break
        weights = np.array([n.count for n in leaves], dtype=np.float64)
        probs = weights / weights.sum()
        target = leaves[int(rng.choice(len(leaves), p=probs))]
        try:
            session.expand(target.rule)
        except SessionError:  # pragma: no cover - defensive
            break
    served = sum(1 for r in session.history if r.sample_method in ("find", "combine"))
    created = sum(1 for r in session.history if r.sample_method == "create")
    return TraceResult(
        clicks=len(session.history),
        served_from_memory=served,
        created=created,
        simulated_io_seconds=disk.io_stats.simulated_seconds,
        wall_seconds=sum(r.wall_seconds for r in session.history),
    )


def run_memory_budget_sweep(
    table: Table,
    budgets: list[int],
    *,
    clicks: int = 6,
    min_sample_size: int = 5_000,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> dict[int, TraceResult]:
    """Average exploration traces per memory budget ``M``.

    Expected shape: larger budgets raise the memory-hit rate and lower
    simulated I/O, saturating once every plausible next drill-down
    fits (the reason the paper can fix M at 10× minSS).
    """
    out: dict[int, TraceResult] = {}
    for budget in budgets:
        results = [
            simulate_exploration(
                table,
                clicks=clicks,
                memory_capacity=budget,
                min_sample_size=min_sample_size,
                seed=seed,
            )
            for seed in seeds
        ]
        out[budget] = TraceResult(
            clicks=int(np.mean([r.clicks for r in results])),
            served_from_memory=int(np.mean([r.served_from_memory for r in results])),
            created=int(np.mean([r.created for r in results])),
            simulated_io_seconds=float(np.mean([r.simulated_io_seconds for r in results])),
            wall_seconds=float(np.mean([r.wall_seconds for r in results])),
        )
    return out
