"""Ablation runners for the design choices DESIGN.md calls out.

* **Pruning (X2)** — the a-priori bound of Algorithm 2: identical
  output, fewer extended candidates / scanned rows.
* **Allocation (X3)** — Section 4.1's DP versus the Section 4.2 convex
  relaxation (LP and projected subgradient) versus a uniform split,
  scored under the *true* step objective of Problem 5.
* **Marginal objective** — BRS versus the overlap-blind top-k itemset
  summary (the §2.1 motivation for MCount).
* **Sum aggregation (X4)** — Count versus a Sales measure column on
  the retail table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.summaries import top_k_itemsets
from repro.core.brs import brs
from repro.core.scoring import score_set, tuple_measures
from repro.core.weights import SizeWeight, WeightFunction
from repro.sampling.allocation import GroupSpec, LeafSpec, allocate_dp, allocate_uniform
from repro.sampling.convex import (
    problem_from_groups,
    solve_lp,
    solve_subgradient,
    step_objective,
)
from repro.table.table import Table

__all__ = [
    "PruningAblation",
    "run_pruning_ablation",
    "AllocationAblation",
    "random_allocation_groups",
    "run_allocation_ablation",
    "MarginalAblation",
    "run_marginal_objective_ablation",
    "SumAblation",
    "run_sum_aggregate_ablation",
]


@dataclass(frozen=True)
class PruningAblation:
    """Search-work counters with the bound on vs off (same output)."""

    same_rules: bool
    pruned_rows_scanned: int
    unpruned_rows_scanned: int
    pruned_candidates: int
    unpruned_candidates: int

    @property
    def rows_saved_fraction(self) -> float:
        if self.unpruned_rows_scanned == 0:
            return 0.0
        return 1.0 - self.pruned_rows_scanned / self.unpruned_rows_scanned


def run_pruning_ablation(
    table: Table,
    wf: WeightFunction,
    *,
    k: int = 4,
    mw: float = 5.0,
) -> PruningAblation:
    """X2: run BRS with and without the Algorithm 2 pruning bound."""
    with_prune = brs(table, wf, k, mw, prune=True)
    without = brs(table, wf, k, mw, prune=False)
    return PruningAblation(
        same_rules=set(with_prune.rules) == set(without.rules),
        pruned_rows_scanned=with_prune.stats.rows_scanned,
        unpruned_rows_scanned=without.stats.rows_scanned,
        pruned_candidates=with_prune.stats.candidates_generated,
        unpruned_candidates=without.stats.candidates_generated,
    )


@dataclass(frozen=True)
class AllocationAblation:
    """Step-objective value per allocator on one instance."""

    dp_value: float
    uniform_value: float
    lp_value: float
    subgradient_value: float
    memory: int
    min_sample_size: int


def random_allocation_groups(
    rng: np.random.Generator,
    *,
    n_groups: int = 4,
    leaves_per_group: int = 3,
) -> list[GroupSpec]:
    """A random displayed-tree allocation instance."""
    groups = []
    for g in range(n_groups):
        raw = rng.random(leaves_per_group)
        probs = raw / raw.sum() / n_groups
        leaves = tuple(
            LeafSpec(
                name=f"g{g}l{i}",
                probability=float(probs[i]),
                selectivity=float(rng.uniform(0.05, 0.95)),
            )
            for i in range(leaves_per_group)
        )
        groups.append(GroupSpec(parent=f"g{g}", leaves=leaves))
    return groups


def run_allocation_ablation(
    groups: list[GroupSpec],
    *,
    memory: int = 30_000,
    min_sample_size: int = 5_000,
) -> AllocationAblation:
    """X3: DP vs uniform vs LP vs subgradient under the step objective.

    The convex solvers optimise the hinge surrogate; their rounded
    sizes are evaluated under the true indicator objective, exposing
    the paper's noted weakness that hinge credit below ``minSS`` can
    leave every leaf short.
    """
    problem = problem_from_groups(groups, memory, min_sample_size)

    def step_value(sizes: dict[str, float]) -> float:
        vector = np.array([sizes.get(n, 0.0) for n in problem.node_names])
        return step_objective(problem, vector)

    dp = allocate_dp(groups, memory, min_sample_size)
    uniform = allocate_uniform(groups, memory, min_sample_size)
    lp = solve_lp(problem)
    sub = solve_subgradient(problem)
    return AllocationAblation(
        dp_value=dp.value,
        uniform_value=uniform.value,
        lp_value=step_value(lp.sizes),
        subgradient_value=step_value(sub.sizes),
        memory=memory,
        min_sample_size=min_sample_size,
    )


@dataclass(frozen=True)
class MarginalAblation:
    """Score of BRS vs the overlap-blind top-k itemset summary."""

    brs_score: float
    topk_score: float

    @property
    def improvement(self) -> float:
        if self.topk_score == 0:
            return 0.0
        return self.brs_score / self.topk_score


def run_marginal_objective_ablation(
    table: Table,
    *,
    k: int = 4,
    mw: float = 5.0,
) -> MarginalAblation:
    """§2.1's motivation: MCount-driven selection vs frequency-driven."""
    wf = SizeWeight()
    brs_result = brs(table, wf, k, mw)
    topk = top_k_itemsets(table, wf, k, max_size=int(mw))
    return MarginalAblation(
        brs_score=brs_result.score,
        topk_score=score_set(topk.rules, table, wf),
    )


@dataclass(frozen=True)
class SumAblation:
    """Count-driven vs measure-driven summaries of the same table (X4)."""

    count_rules: tuple
    sum_rules: tuple
    count_score: float
    sum_score: float


def run_sum_aggregate_ablation(
    table: Table,
    measure: str,
    *,
    k: int = 3,
    mw: float = 3.0,
) -> SumAblation:
    """X4: replace Count with Sum over ``measure`` (§6.3)."""
    wf = SizeWeight()
    count_result = brs(table, wf, k, mw)
    measures = tuple_measures(table, measure)
    sum_result = brs(table, wf, k, mw, measures=measures)
    return SumAblation(
        count_rules=count_result.rules,
        sum_rules=sum_result.rules,
        count_score=count_result.score,
        sum_score=sum_result.score,
    )
