"""Experiment runners shared by the benchmark harness (one per table/figure)."""

from repro.experiments.ablations import (
    AllocationAblation,
    MarginalAblation,
    PruningAblation,
    SumAblation,
    random_allocation_groups,
    run_allocation_ablation,
    run_marginal_objective_ablation,
    run_pruning_ablation,
    run_sum_aggregate_ablation,
)
from repro.experiments.common import Series, SeriesPoint, report_table, timed, trend_slope
from repro.experiments.performance import (
    MinSSPoint,
    run_approximation_study,
    run_minss_sweep,
    run_mw_sweep,
    run_scaling_sweep,
    weighting_by_name,
)
from repro.experiments.qualitative import (
    MARKETING_7_COLUMNS,
    QualitativeResult,
    marketing_first_seven,
    run_fig1_empty_rule,
    run_fig2_star_education,
    run_fig3_rule_expansion,
    run_fig4_traditional_age,
    run_fig6_bits,
    run_fig7_size_minus_one,
    run_tables_1_2_3,
)

__all__ = [
    "AllocationAblation",
    "MARKETING_7_COLUMNS",
    "MarginalAblation",
    "MinSSPoint",
    "PruningAblation",
    "QualitativeResult",
    "Series",
    "SeriesPoint",
    "SumAblation",
    "marketing_first_seven",
    "random_allocation_groups",
    "report_table",
    "run_allocation_ablation",
    "run_approximation_study",
    "run_fig1_empty_rule",
    "run_fig2_star_education",
    "run_fig3_rule_expansion",
    "run_fig4_traditional_age",
    "run_fig6_bits",
    "run_fig7_size_minus_one",
    "run_marginal_objective_ablation",
    "run_minss_sweep",
    "run_mw_sweep",
    "run_pruning_ablation",
    "run_scaling_sweep",
    "run_sum_aggregate_ablation",
    "run_tables_1_2_3",
    "timed",
    "trend_slope",
    "weighting_by_name",
]

from repro.experiments.interaction import (
    TraceResult,
    run_memory_budget_sweep,
    simulate_exploration,
)

__all__ += [
    "TraceResult",
    "run_memory_budget_sweep",
    "simulate_exploration",
]
