"""repro — a full reproduction of *Interactive Data Exploration with
Smart Drill-Down* (Joglekar, Garcia-Molina, Parameswaran; ICDE 2016).

Quickstart::

    from repro import DrillDownSession
    from repro.datasets import generate_retail

    session = DrillDownSession(generate_retail(), k=3, mw=3.0)
    session.expand(session.root.rule)
    print(session.to_text())

The public surface is organised as:

* :mod:`repro.table` — columnar table substrate (schemas, dictionary
  encoding, CSV I/O, bucketization);
* :mod:`repro.core` — rules, weighting functions, scoring, the BRS
  greedy algorithm and the drill-down operators;
* :mod:`repro.storage` — simulated disk with metered scans;
* :mod:`repro.sampling` — reservoir sampling, the SampleHandler, and
  the sample-memory allocation solvers;
* :mod:`repro.session` / :mod:`repro.ui` — the interactive prototype;
* :mod:`repro.serving` — the multi-tenant serving tier (catalog,
  session registry, context sharing, fair scheduling, HTTP front end);
* :mod:`repro.datasets` — synthetic stand-ins for the paper's data;
* :mod:`repro.baselines`, :mod:`repro.hardness`,
  :mod:`repro.experiments` — evaluation machinery.
"""

from repro.core import (
    BRSResult,
    brs_time_limited,
    adjust_column_preference,
    BitsWeight,
    CallableWeight,
    ColumnIndicatorWeight,
    CountingPool,
    DrillDownResult,
    MergedWeight,
    ParametricWeight,
    Rule,
    RuleList,
    STAR,
    ScoredRule,
    SizeMinusOneWeight,
    SizeWeight,
    StarConstrainedWeight,
    WeightFunction,
    brs,
    brs_iter,
    count,
    cover_mask,
    rule_drilldown,
    score_set,
    star_drilldown,
    traditional_drilldown,
)
from repro.errors import ReproError
from repro.sampling import Sample, SampleHandler
from repro.serving import DrillDownServer, ShardRouter
from repro.session import DrillDownSession
from repro.storage import DiskTable
from repro.table import (
    CategoricalColumn,
    col,
    group_by,
    ColumnKind,
    ColumnSchema,
    Interval,
    NumericColumn,
    Schema,
    Table,
    bucketize,
    read_csv,
    write_csv,
)

__version__ = "1.0.0"

__all__ = [
    "BRSResult",
    "BitsWeight",
    "CallableWeight",
    "CategoricalColumn",
    "ColumnIndicatorWeight",
    "ColumnKind",
    "ColumnSchema",
    "CountingPool",
    "DiskTable",
    "DrillDownResult",
    "DrillDownServer",
    "DrillDownSession",
    "Interval",
    "MergedWeight",
    "NumericColumn",
    "ParametricWeight",
    "ReproError",
    "Rule",
    "RuleList",
    "STAR",
    "Sample",
    "SampleHandler",
    "Schema",
    "ShardRouter",
    "ScoredRule",
    "SizeMinusOneWeight",
    "SizeWeight",
    "StarConstrainedWeight",
    "Table",
    "WeightFunction",
    "brs",
    "brs_iter",
    "brs_time_limited",
    "adjust_column_preference",
    "bucketize",
    "col",
    "count",
    "cover_mask",
    "group_by",
    "read_csv",
    "rule_drilldown",
    "score_set",
    "star_drilldown",
    "traditional_drilldown",
    "write_csv",
    "__version__",
]
