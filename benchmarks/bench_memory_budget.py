"""Extension experiment: memory budget M vs interaction responsiveness.

The paper fixes M = 50,000 = 10 × minSS without a sweep; this benchmark
supplies the missing curve: the fraction of drill-downs served from
memory (Find/Combine) rises with M and the simulated disk time falls,
saturating near the paper's chosen operating point.
"""

from __future__ import annotations

from repro.experiments import report_table
from repro.experiments.interaction import run_memory_budget_sweep, simulate_exploration

BUDGETS = [6_000, 12_000, 25_000, 50_000]


def test_exploration_trace(benchmark, census):
    result = benchmark.pedantic(
        lambda: simulate_exploration(census, clicks=5, min_sample_size=3_000),
        rounds=2,
        iterations=1,
    )
    assert result.clicks >= 3
    assert result.created >= 1  # the first pass is unavoidable


def test_memory_budget_sweep(benchmark, census):
    sweep = benchmark.pedantic(
        lambda: run_memory_budget_sweep(
            census, BUDGETS, clicks=5, min_sample_size=3_000
        ),
        rounds=1,
        iterations=1,
    )
    hit_rates = [sweep[b].memory_hit_rate for b in BUDGETS]
    io_seconds = [sweep[b].simulated_io_seconds for b in BUDGETS]
    # Shape: more memory, more drill-downs served without disk.
    assert hit_rates[-1] >= hit_rates[0]
    assert io_seconds[-1] <= io_seconds[0] * 1.5
    print()
    print(
        report_table(
            "Memory budget M vs interaction responsiveness (5-click traces)",
            ["M (tuples)", "memory-served", "created", "hit rate", "sim io s"],
            [
                [
                    f"{b:,}",
                    sweep[b].served_from_memory,
                    sweep[b].created,
                    f"{sweep[b].memory_hit_rate:.0%}",
                    f"{sweep[b].simulated_io_seconds:.2f}",
                ]
                for b in BUDGETS
            ],
        )
    )
