"""F8(b): Figure 8(b) — percent error in displayed counts vs ``minSS``.

Expected shape (paper §5.2.2): the error "decreases approximately as
1/sqrt(minSS)" — quadrupling the sample should roughly halve the error.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import report_table, run_minss_sweep

MINSS_VALUES = [250, 1000, 4000]


def test_fig8b_error_decay(benchmark, marketing7, census):
    def sweep():
        return {
            "Marketing size": run_minss_sweep(
                marketing7, "size", MINSS_VALUES, iterations=8, seed=1
            ),
            "Census size": run_minss_sweep(
                census, "size", MINSS_VALUES, iterations=8, seed=1
            ),
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, points in series.items():
        errors = [p.percent_error for p in points]
        rows.append([name] + [f"{e:.2f}%" for e in errors])
        # Monotone decay, and ≈ 2× shrink per 4× sample (allow slack 1.5×).
        assert errors[-1] < errors[0]
        assert errors[-1] < errors[0] / 1.5
    print()
    print(
        report_table(
            "Figure 8(b) — % count error vs minSS (expect ~1/sqrt decay)",
            ["series"] + [f"minSS={v}" for v in MINSS_VALUES],
            rows,
        )
    )
