"""F4: Figure 4 — a regular drill-down on the Age column (Marketing).

Traditional drill-down as the weighting-function special case of
Section 5.1: one rule per distinct Age bucket, ordered by count.
"""

from __future__ import annotations

from repro.core import Rule, traditional_drilldown
from repro.experiments import run_fig4_traditional_age


def test_fig4_traditional_age(benchmark, marketing7):
    root = Rule.trivial(marketing7.n_columns)
    result = benchmark(lambda: traditional_drilldown(marketing7, root, "Age"))
    assert len(result.rules) == 7  # one per Age bucket
    counts = [e.count for e in result.rule_list]
    assert counts == sorted(counts, reverse=True)
    assert sum(counts) == marketing7.n_rows


def test_fig4_brs_equivalence(benchmark, marketing7):
    """The §5.1 equivalence: indicator-weight BRS = group-by."""
    root = Rule.trivial(marketing7.n_columns)
    via_brs = benchmark(
        lambda: traditional_drilldown(marketing7, root, "Age", via_brs=True)
    )
    direct = traditional_drilldown(marketing7, root, "Age")
    assert set(via_brs.rules) == set(direct.rules)


def test_fig4_transcript(benchmark):
    result = benchmark(run_fig4_traditional_age)
    print()
    print(result.name)
    print(result.text)
