"""X3: ablation — sample-memory allocation quality (§4.1 vs §4.2).

Scores the DP, the convex-LP, the projected-subgradient and a uniform
split on random displayed trees under the *true* step objective of
Problem 5.  Expected ordering: DP ≥ LP-rounded ≥ uniform on skewed
instances, with the hinge solvers exposing the paper's noted weakness
(hinge credit below minSS satisfies nobody).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    random_allocation_groups,
    report_table,
    run_allocation_ablation,
)
from repro.sampling import allocate_dp


def test_dp_allocator_speed(benchmark):
    rng = np.random.default_rng(5)
    groups = random_allocation_groups(rng, n_groups=5, leaves_per_group=4)
    result = benchmark(lambda: allocate_dp(groups, 30_000, 5_000))
    assert result.cost <= 30_000


def test_allocator_quality(benchmark):
    def run():
        out = []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            groups = random_allocation_groups(rng, n_groups=4, leaves_per_group=3)
            out.append(run_allocation_ablation(groups, memory=20_000, min_sample_size=5_000))
        return out

    ablations = benchmark.pedantic(run, rounds=1, iterations=1)
    dp = np.mean([a.dp_value for a in ablations])
    uniform = np.mean([a.uniform_value for a in ablations])
    lp = np.mean([a.lp_value for a in ablations])
    sub = np.mean([a.subgradient_value for a in ablations])
    # DP dominates on the true objective; no hinge solver beats it.
    assert dp >= lp - 1e-9
    assert dp >= sub - 1e-9
    assert dp >= uniform - 1e-9
    print()
    print(
        report_table(
            "Ablation — allocation quality (mean step-objective over 8 instances)",
            ["allocator", "satisfied probability"],
            [
                ["DP (§4.1)", f"{dp:.3f}"],
                ["convex LP (§4.2)", f"{lp:.3f}"],
                ["subgradient (§4.2)", f"{sub:.3f}"],
                ["uniform split", f"{uniform:.3f}"],
            ],
        )
    )
