"""Multi-tenant serving throughput: 1 vs 8 tenants over one shared export.

The serving tier's claim is not raw speed but *shape*: many tenants on
one :class:`~repro.serving.DrillDownServer` share one shared-memory
table export and — when their configurations match — one cached
candidate lattice (:class:`~repro.serving.ContextStore`), so the tier's
aggregate work grows far slower than tenant count.  This benchmark
drives 1 and 8 concurrent tenants (threads) through one server over
one census export, each tenant expanding the root and then its first
child, with the context store on and off, and records
throughput/latency per scenario.

Asserted (structurally — latency numbers are machine-dependent and
merely recorded):

* every tenant's rule lists are identical to a standalone session's;
* the catalog's table keeps exactly one pool export throughout;
* with sharing on, tenants after the first hit the context store.

A JSON perf record is written next to this file
(``BENCH_serving.json``).  Run via pytest
(``pytest benchmarks/bench_serving.py -m smoke``) or directly::

    PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]

``--smoke`` shrinks the census table (30k rows instead of 60k).
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.core.parallel import CountingPool
from repro.datasets import generate_census
from repro.serving import DrillDownServer
from repro.session import DrillDownSession

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"
CENSUS_ROWS = 60_000
SMOKE_ROWS = 30_000
N_COLUMNS = 6
K = 4
MW = 5.0
TENANT_COUNTS = (1, 8)
N_WORKERS = 2


def _expected_rules(table) -> tuple[list, list]:
    """The standalone two-level expansion every tenant must reproduce."""
    session = DrillDownSession(table, k=K, mw=MW)
    level1 = session.expand(session.root.rule)
    level2 = session.expand(level1[0].rule)
    return [c.rule for c in level1], [c.rule for c in level2]


def _drive_tenants(server, n_tenants: int) -> dict:
    """Run every tenant's two-expansion workload on its own thread."""
    latencies: list[float] = []
    results: dict[int, tuple[list, list]] = {}
    errors: list[Exception] = []
    lock = threading.Lock()

    def tenant_run(i: int) -> None:
        try:
            sid = server.create_session("census", tenant=f"tenant-{i}", k=K, mw=MW)
            start = time.perf_counter()
            level1 = server.expand(sid)
            mid = time.perf_counter()
            level2 = server.expand(sid, level1[0].rule)
            done = time.perf_counter()
            with lock:
                latencies.extend((mid - start, done - mid))
                results[i] = ([c.rule for c in level1], [c.rule for c in level2])
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=tenant_run, args=(i,)) for i in range(n_tenants)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    latencies.sort()
    expansions = 2 * n_tenants
    return {
        "tenants": n_tenants,
        "expansions": expansions,
        "wall_seconds": round(elapsed, 6),
        "throughput_expansions_per_s": round(expansions / elapsed, 3),
        "mean_latency_seconds": round(sum(latencies) / len(latencies), 6),
        "p95_latency_seconds": round(latencies[int(0.95 * (len(latencies) - 1))], 6),
        "_results": results,
    }


def run_benchmark(rows: int) -> dict:
    table = generate_census(rows, n_columns=N_COLUMNS)
    expected = _expected_rules(table)
    scenarios = []
    identical = True
    for share_contexts in (False, True):
        for n_tenants in TENANT_COUNTS:
            pool = CountingPool(N_WORKERS)
            with DrillDownServer(pool=pool, share_contexts=share_contexts) as server:
                server.register_table("census", table)
                # Warm-up tenant: forks the workers and (with sharing on)
                # publishes the two context prototypes, so the timed run
                # measures the steady state a long-lived tier serves from.
                _drive_tenants(server, 1)
                warm_hits = 0 if server.contexts is None else server.contexts.hits
                scenario = _drive_tenants(server, n_tenants)
                results = scenario.pop("_results")
                identical = identical and all(r == expected for r in results.values())
                scenario["share_contexts"] = share_contexts
                scenario["exports_for_table"] = pool.export_count(table)
                scenario["context_hits"] = (
                    None
                    if server.contexts is None
                    else server.contexts.hits - warm_hits
                )
                scenarios.append(scenario)
            pool.close()
    return {
        "workload": {
            "dataset": "census",
            "rows": rows,
            "columns": N_COLUMNS,
            "k": K,
            "mw": MW,
            "weighting": "size",
            "expansions_per_tenant": 2,
            "pool_workers": N_WORKERS,
        },
        "cpu_count": os.cpu_count() or 1,
        "scenarios": scenarios,
        "identical_rule_lists": identical,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    assert record["identical_rule_lists"], "a tenant diverged from the standalone session"
    for scenario in record["scenarios"]:
        assert scenario["exports_for_table"] == 1, (
            f"expected exactly one pool export for the shared table, "
            f"found {scenario['exports_for_table']}"
        )
        if scenario["share_contexts"]:
            # Steady state: every timed expansion leases a prototype.
            assert scenario["context_hits"] == scenario["expansions"], (
                "sharing enabled but timed expansions missed the context store"
            )


@pytest.mark.smoke
def test_serving_throughput():
    """Smoke: 1 vs 8 tenants, store on/off — identical rules, shared state."""
    record = run_benchmark(SMOKE_ROWS)
    write_record(record)
    print()
    for scenario in record["scenarios"]:
        print(
            f"BX serving: {scenario['tenants']} tenant(s), "
            f"store={'on' if scenario['share_contexts'] else 'off'}: "
            f"{scenario['throughput_expansions_per_s']:.1f} exp/s, "
            f"mean {scenario['mean_latency_seconds']*1000:.0f} ms"
        )
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="smaller table (fast CI smoke run)"
    )
    args = parser.parse_args()
    record = run_benchmark(SMOKE_ROWS if args.smoke else CENSUS_ROWS)
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
