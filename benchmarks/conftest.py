"""Shared benchmark fixtures: paper datasets cached per session.

The benchmark suite regenerates every table and figure of the paper's
evaluation (Section 5); dataset sizes are laptop-scaled (DESIGN.md §3)
but every curve's *shape* matches the paper, which the benchmarks
assert alongside timing.

Smoke mode — ``pytest benchmarks/bench_*.py -m smoke`` — selects the
fast subset that emits the committed ``BENCH_*.json`` perf records.
That covers the engine benches (incremental search, parallel counting)
*and* the serving tier: ``bench_serving.py`` (multi-tenant, one
process), ``bench_persistence.py`` (checkpoint/warm restart), and
``bench_sharded_serving.py`` (1 vs N shard worker processes).  The
``smoke`` marker is registered in the repo-root ``pytest.ini``; the
registration below keeps ``pytest`` runs rooted inside ``benchmarks/``
warning-free too.
"""

from __future__ import annotations

import pytest

from repro.datasets import generate_census, generate_marketing, generate_retail
from repro.experiments import MARKETING_7_COLUMNS


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: fast benchmark subset (<60 s) that emits a BENCH_*.json perf record",
    )

#: Census rows used by the benchmark suite (full paper scale is 2.5M;
#: this keeps a full benchmark run in minutes while preserving shapes).
CENSUS_BENCH_ROWS = 100_000


@pytest.fixture(scope="session")
def retail():
    return generate_retail()


@pytest.fixture(scope="session")
def marketing7():
    return generate_marketing().select(list(MARKETING_7_COLUMNS))


@pytest.fixture(scope="session")
def census():
    return generate_census(CENSUS_BENCH_ROWS, n_columns=7)
