"""X1: §5.2.3 — runtime ≈ a·|T| + b·minSS.

The Create path's simulated I/O must be linear in the table size while
the BRS-on-sample term stays flat; a drill-down served by Find/Combine
is independent of |T| entirely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, SizeWeight, brs
from repro.datasets import generate_census
from repro.experiments import report_table, run_scaling_sweep
from repro.sampling import SampleHandler
from repro.storage import DiskTable

SIZES = (25_000, 50_000, 100_000)


def test_scaling_sweep(benchmark):
    tables = [generate_census(n, n_columns=7, seed=11) for n in SIZES]
    series = benchmark.pedantic(
        lambda: run_scaling_sweep(tables, min_sample_size=5_000), rounds=1, iterations=1
    )
    io = series.extra("simulated_io_seconds")
    brs_only = series.extra("brs_only_seconds")
    # a·|T|: doubling rows doubles scan cost.
    assert io[1] == pytest.approx(2 * io[0], rel=0.05)
    assert io[2] == pytest.approx(4 * io[0], rel=0.05)
    # b·minSS: the in-memory term does not scale with |T|.
    assert max(brs_only) < 5 * min(brs_only) + 0.05
    print()
    print(
        report_table(
            "§5.2.3 — drill-down cost vs |T| (Create pass + BRS)",
            ["rows", "wall s", "simulated io s", "brs-only s"],
            [
                [f"{int(p.x)}", f"{p.y:.3f}", f"{p.extra['simulated_io_seconds']:.3f}",
                 f"{p.extra['brs_only_seconds']:.3f}"]
                for p in series.points
            ],
        )
    )


def test_memory_served_drilldown_independent_of_table(benchmark):
    """Find/Combine responses do not touch the table at all."""
    table = generate_census(SIZES[-1], n_columns=7, seed=11)
    disk = DiskTable(table)
    handler = SampleHandler(
        disk, memory_capacity=50_000, min_sample_size=5_000, rng=np.random.default_rng(0)
    )
    root = Rule.trivial(7)
    handler.get_sample(root)  # pay the Create once
    io_before = disk.io_stats.simulated_seconds

    def served_from_memory():
        sample, method = handler.get_sample(root)
        assert method == "find"
        return brs(sample.table, SizeWeight(), 4, 5.0)

    benchmark(served_from_memory)
    assert disk.io_stats.simulated_seconds == io_before
