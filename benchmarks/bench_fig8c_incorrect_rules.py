"""F8(c): Figure 8(c) — number of incorrect displayed rules vs ``minSS``.

Expected shape (paper §5.2.2): the count of rules that differ from the
full-table expansion falls as minSS grows; the paper reports ≈ 1 at
minSS ≤ 1000 on Census, ≈ 0.3 beyond, and near-0 for Marketing/Size.
"""

from __future__ import annotations

from repro.experiments import report_table, run_minss_sweep

MINSS_VALUES = [250, 1000, 4000, 8000]


def test_fig8c_incorrect_rules(benchmark, marketing7, census):
    def sweep():
        return {
            "Marketing size": run_minss_sweep(
                marketing7, "size", MINSS_VALUES, iterations=8, seed=2
            ),
            "Census size": run_minss_sweep(
                census, "size", MINSS_VALUES, iterations=8, seed=2
            ),
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, points in series.items():
        incorrect = [p.incorrect_rules for p in points]
        rows.append([name] + [f"{x:.2f}" for x in incorrect])
        # Shape: large samples make fewer mistakes than tiny ones.
        assert incorrect[-1] <= incorrect[0]
        # And healthy sample sizes display mostly-correct rule sets.
        assert incorrect[-1] <= 1.5
    print()
    print(
        report_table(
            "Figure 8(c) — incorrect rules (of k=4) vs minSS",
            ["series"] + [f"minSS={v}" for v in MINSS_VALUES],
            rows,
        )
    )
