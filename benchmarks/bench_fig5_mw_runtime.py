"""F5: Figure 5 — running time vs the ``mw`` parameter.

Four series as in the paper: {Marketing, Census} × {Size, Bits}.
Expected shape: runtime grows (roughly linearly) with ``mw`` because a
larger max-weight bound weakens the a-priori pruning; the paper reports
the same on its datasets.  The benchmark fixture times one
representative point per series; the sweep printout reports the full
curve with its fitted slope.
"""

from __future__ import annotations

import pytest

from repro.core import brs
from repro.experiments import report_table, run_mw_sweep, trend_slope, weighting_by_name

MW_VALUES = [1, 2, 3, 5, 8, 12, 16, 20]


@pytest.mark.parametrize("weighting,mw", [("size", 5.0), ("bits", 20.0)])
def test_marketing_expand_empty_rule(benchmark, marketing7, weighting, mw):
    wf = weighting_by_name(weighting, marketing7)
    result = benchmark(lambda: brs(marketing7, wf, 4, mw))
    assert len(result.rules) == 4


@pytest.mark.parametrize("weighting,mw", [("size", 5.0), ("bits", 20.0)])
def test_census_expand_empty_rule(benchmark, census, weighting, mw):
    wf = weighting_by_name(weighting, census)
    result = benchmark(lambda: brs(census, wf, 4, mw))
    assert len(result.rules) == 4


def test_fig5_sweep_shape(benchmark, marketing7, census):
    """The full Figure 5 sweep: runtime grows with mw on every series."""

    def sweep():
        out = {}
        for name, table in (("Marketing", marketing7), ("Census", census)):
            for weighting in ("size", "bits"):
                out[f"{name} {weighting}"] = run_mw_sweep(
                    table, weighting, MW_VALUES, repeats=1, name=f"{name} {weighting}"
                )
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, s in series.items():
        slope = trend_slope(s.xs, s.ys)
        rows.append(
            [name]
            + [f"{y * 1000:.0f}" for y in s.ys]
            + [f"{slope * 1000:.2f}"]
        )
        # Paper shape: more mw never makes the search cheaper by much —
        # the large-mw end must cost at least the small-mw end.
        assert s.ys[-1] >= 0.5 * s.ys[0]
        # And the achievable score is monotone in mw.
        scores = s.extra("score")
        assert all(b >= a - 1e-9 for a, b in zip(scores, scores[1:]))
    print()
    print(
        report_table(
            "Figure 5 — expansion time (ms) vs mw",
            ["series"] + [f"mw={v}" for v in MW_VALUES] + ["slope ms/mw"],
            rows,
        )
    )
