"""X5: the greedy guarantee in practice.

Submodularity (Lemma 3) gives BRS a 1 − (1 − 1/k)^k bound; on random
tiny tables the realised ratio is far better.  The benchmark times the
study and asserts the bound on every trial.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import report_table, run_approximation_study


def test_greedy_vs_optimal(benchmark):
    series = benchmark.pedantic(
        lambda: run_approximation_study(n_trials=12, n_rows=30, k=3),
        rounds=1,
        iterations=1,
    )
    ratios = np.asarray(series.ys)
    bound = 1 - (1 - 1 / 3) ** 3
    assert (ratios >= bound - 1e-9).all()
    assert (ratios <= 1.0 + 1e-9).all()
    print()
    print(
        report_table(
            "Greedy/optimal Score ratio on random tables (bound ≈ 0.704 for k=3)",
            ["statistic", "value"],
            [
                ["min ratio", f"{ratios.min():.3f}"],
                ["mean ratio", f"{ratios.mean():.3f}"],
                ["trials at optimum", f"{int((ratios > 1 - 1e-9).sum())}/{ratios.size}"],
            ],
        )
    )
