"""F6: Figure 6 — the Bits weighting summary (Marketing).

Bits weighting assigns low weight to the binary Sex column, so the
summary surfaces Marital-Status / Time-in-Bay-Area / Occupation
information instead of the Figure 1 gender rules — the paper's §5.1.2
observation, asserted here.
"""

from __future__ import annotations

from repro.core import BitsWeight, brs
from repro.experiments import run_fig6_bits


def test_fig6_bits_weighting(benchmark, marketing7):
    wf = BitsWeight.for_table(marketing7)
    result = benchmark(lambda: brs(marketing7, wf, 4, 20.0))
    sex_idx = marketing7.schema.index_of("Sex")
    sex_rules = [r for r in result.rules if not r.is_star(sex_idx)]
    assert len(sex_rules) <= 1


def test_fig6_transcript(benchmark):
    result = benchmark(run_fig6_bits)
    print()
    print(result.name)
    print(result.text)
