"""Parallel first-pick counting: serial vs shared-memory worker pool.

PR 1's incremental engine made picks 2..k nearly free, leaving the
*first* pick's level-wise a-priori counting as the interactive-latency
bottleneck (§6.1's sub-second bar).  This benchmark times the first
greedy pick on the census 100k workload under the serial engine and
under :class:`repro.core.CountingPool` backends with 2 and 4 workers,
and checks that the parallel engine's full k=10 rule list is identical
to the serial one.

A JSON perf record is written next to this file
(``BENCH_parallel_counting.json``).  The ≥1.5× four-worker speedup
floor is asserted only on machines with at least four CPU cores —
on smaller boxes (CI containers are often single-core) the record
still captures the measured ratio, with ``speedup_asserted: false``;
rule-list equivalence is asserted unconditionally.  Run via pytest
(``pytest benchmarks/bench_parallel_counting.py -m smoke``) or
directly::

    PYTHONPATH=src python benchmarks/bench_parallel_counting.py [--smoke]

Both modes finish well under a minute; ``--smoke`` runs one repeat
instead of three.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro.core import CountingPool, SizeWeight, brs, brs_iter
from repro.datasets import generate_census

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_parallel_counting.json"
CENSUS_ROWS = 100_000
N_COLUMNS = 7
K = 10
MW = 5.0
WORKER_COUNTS = (2, 4)
MIN_SPEEDUP = 1.5  # four-worker floor, asserted when >= 4 cores exist


def _first_pick_seconds(table, wf, pool, repeats: int) -> float:
    """Best-of-``repeats`` latency of the first greedy pick."""
    best = float("inf")
    for _ in range(repeats):
        stream = brs_iter(table, wf, MW, pool=pool)
        start = time.perf_counter()
        next(stream)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(table, repeats: int = 3) -> dict:
    """Time serial vs 2/4-worker first picks and check equivalence."""
    wf = SizeWeight()
    serial_first = _first_pick_seconds(table, wf, None, repeats)
    serial_run = brs(table, wf, K, MW)
    workers: dict[str, dict] = {}
    identical = True
    for n in WORKER_COUNTS:
        with CountingPool(n) as pool:
            # Warm-up: fork the workers and export the table once, so
            # the measured first pick reflects the steady state a
            # session or serving tier runs in.
            _first_pick_seconds(table, wf, pool, 1)
            first = _first_pick_seconds(table, wf, pool, repeats)
            run = brs(table, wf, K, MW, pool=pool)
        same = [p.rule for p in run.picks] == [p.rule for p in serial_run.picks] and [
            p.marginal for p in run.picks
        ] == [p.marginal for p in serial_run.picks]
        identical = identical and same
        workers[str(n)] = {
            "first_pick_seconds": round(first, 6),
            "speedup": round(serial_first / first, 3),
            "identical_rule_lists": same,
        }
    cpu_count = os.cpu_count() or 1
    return {
        "workload": {
            "dataset": "census",
            "rows": table.n_rows,
            "columns": N_COLUMNS,
            "k": K,
            "mw": MW,
            "weighting": "size",
            "repeats": repeats,
        },
        "cpu_count": cpu_count,
        "serial_first_pick_seconds": round(serial_first, 6),
        "workers": workers,
        "identical_rule_lists": identical,
        "speedup_asserted": cpu_count >= max(WORKER_COUNTS),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    assert record["identical_rule_lists"], "parallel engine disagreed on the rule list"
    if record["speedup_asserted"]:
        speedup = record["workers"][str(max(WORKER_COUNTS))]["speedup"]
        assert speedup >= MIN_SPEEDUP, (
            f"4-worker first-pick speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP}x floor on a {record['cpu_count']}-core machine"
        )


@pytest.mark.smoke
def test_parallel_counting_speedup(census):
    """Smoke target: identical rules; ≥1.5× with 4 workers on ≥4 cores."""
    record = run_benchmark(census, repeats=1)
    write_record(record)
    print()
    line = ", ".join(
        f"{n}w {w['first_pick_seconds']*1000:.0f} ms ({w['speedup']:.2f}x)"
        for n, w in record["workers"].items()
    )
    print(
        f"BX parallel counting: serial first pick "
        f"{record['serial_first_pick_seconds']*1000:.0f} ms; {line}; "
        f"{record['cpu_count']} cores"
    )
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="single repeat (fast CI smoke run)"
    )
    args = parser.parse_args()
    table = generate_census(CENSUS_ROWS, n_columns=N_COLUMNS)
    record = run_benchmark(table, repeats=1 if args.smoke else 3)
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
