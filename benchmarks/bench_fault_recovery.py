"""Fault recovery latency: detect -> restart -> warm restore, vs tree size.

ISSUE 6 added a fault-tolerance layer to the sharded serving tier:
crashed or wedged shard workers are detected (by a failing request or
by the watchdog's health probe), killed, respawned, their tables
re-registered, and every snapshotted session warm-restored from the
shard's persist directory.  This benchmark measures how long that
whole recovery pipeline takes as the session tree grows, along both
detection paths:

* **traffic-driven** — a request hits the dead worker, eats the typed
  :class:`~repro.errors.ShardDownError`, and the recovery runs inline
  before the error is raised (timed as ``detect_restart_seconds``);
* **probe-driven** — no traffic at all; one
  :meth:`~repro.serving.ShardRouter.probe_shards` sweep (what the
  background :class:`~repro.serving.ShardWatchdog` runs) finds the
  corpse and recovers it (timed as ``probe_recover_seconds``).

Crashes are injected with the deterministic
:class:`~repro.serving.ChaosRule` seam (``kind="crash"``), not by
reaching into router internals.  Asserted (structurally — latencies
are machine-dependent and merely recorded):

* after every recovery the session renders **bit-identically** to its
  pre-crash render — warm restore loses nothing;
* each scenario performs exactly two restarts (one per detection path)
  and the probe sweep reports the recovered shard.

A JSON perf record is written next to this file
(``BENCH_fault_recovery.json``).  Run via pytest
(``pytest benchmarks/bench_fault_recovery.py -m smoke``) or directly::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py [--smoke]

``--smoke`` shrinks the census table (6k rows instead of 20k) and
drops the largest-tree scenario.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import pytest

from repro.datasets import generate_census
from repro.errors import ReproError, ShardDownError
from repro.serving import ChaosRule, ShardRouter

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_fault_recovery.json"
CENSUS_ROWS = 20_000
SMOKE_ROWS = 6_000
N_COLUMNS = 5
K = 3
MW = 5.0
EXPANSION_COUNTS = (1, 4, 8)
SMOKE_EXPANSION_COUNTS = (1, 4)


def _grow_tree(router: ShardRouter, sid: str, expansions: int) -> int:
    """Expand breadth-first until ``expansions`` expansions succeeded."""
    frontier = [child.rule for child in router.expand(sid)]
    performed = 1
    while performed < expansions and frontier:
        rule = frontier.pop(0)
        try:
            frontier.extend(child.rule for child in router.expand(sid, rule))
        except ReproError:
            continue  # unexpandable leaf: try the next frontier rule
        performed += 1
    return performed


def _crash_and_time_recovery(router: ShardRouter, sid: str, reference: str) -> dict:
    """Crash the worker twice — once per detection path — and time both."""
    # Traffic-driven: the next render crashes the worker mid-op; the
    # router detects the dead pipe, restarts the shard, re-registers
    # the table and warm-restores the snapshots, all before raising.
    router.inject_chaos(0, [ChaosRule(kind="crash", op="render")])
    start = time.perf_counter()
    try:
        router.render(sid)
    except ShardDownError:
        pass
    else:
        raise AssertionError("crash chaos rule did not fire on render")
    detect_restart = time.perf_counter() - start

    start = time.perf_counter()
    restored = router.render(sid)
    rerender = time.perf_counter() - start
    traffic_identical = restored == reference

    # Probe-driven: crash on the health ping, then let one watchdog
    # sweep (no client traffic) find and recover the corpse.
    router.inject_chaos(0, [ChaosRule(kind="crash", op="ping")])
    start = time.perf_counter()
    recovered = router.probe_shards()
    probe_recover = time.perf_counter() - start
    probe_identical = router.render(sid) == reference

    return {
        "detect_restart_seconds": round(detect_restart, 6),
        "first_render_after_restore_seconds": round(rerender, 6),
        "probe_recover_seconds": round(probe_recover, 6),
        "probe_recovered_shards": recovered,
        "bit_identical_after_traffic_recovery": traffic_identical,
        "bit_identical_after_probe_recovery": probe_identical,
        "restarts": router.restarts,
    }


def run_benchmark(rows: int, expansion_counts=EXPANSION_COUNTS) -> dict:
    table = generate_census(rows, n_columns=N_COLUMNS, seed=2016)
    scenarios = []
    with tempfile.TemporaryDirectory(prefix="bench-fault-") as tmp:
        for expansions in expansion_counts:
            with ShardRouter(
                1, persist_dir=Path(tmp) / f"exp-{expansions}"
            ) as router:
                router.register_table("census", table)
                sid = router.create_session("census", tenant="bench", k=K, mw=MW)
                performed = _grow_tree(router, sid, expansions)
                reference = router.render(sid)
                assert router.checkpoint_all() >= 1
                scenario = _crash_and_time_recovery(router, sid, reference)
                scenario["expansions"] = performed
                scenario["tree_rows"] = len(reference.splitlines())
                scenarios.append(scenario)
    return {
        "workload": {
            "dataset": "census",
            "rows": rows,
            "columns": N_COLUMNS,
            "k": K,
            "mw": MW,
            "weighting": "size",
            "n_shards": 1,
        },
        "scenarios": scenarios,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    for scenario in record["scenarios"]:
        label = f"{scenario['expansions']}-expansion scenario"
        assert scenario["bit_identical_after_traffic_recovery"], (
            f"{label}: render diverged after traffic-driven recovery"
        )
        assert scenario["bit_identical_after_probe_recovery"], (
            f"{label}: render diverged after probe-driven recovery"
        )
        assert scenario["restarts"] == 2, (
            f"{label}: expected exactly 2 restarts, saw {scenario['restarts']}"
        )
        assert scenario["probe_recovered_shards"] == [0], (
            f"{label}: probe sweep recovered {scenario['probe_recovered_shards']}"
        )


@pytest.mark.smoke
@pytest.mark.chaos
def test_fault_recovery_latency():
    """Smoke: crash + recover at two tree sizes — bit-identical restores."""
    record = run_benchmark(SMOKE_ROWS, SMOKE_EXPANSION_COUNTS)
    write_record(record)
    print()
    for scenario in record["scenarios"]:
        print(
            f"BX fault recovery: {scenario['expansions']} expansion(s) "
            f"({scenario['tree_rows']} tree rows): "
            f"detect+restart+restore {scenario['detect_restart_seconds']*1000:.0f} ms, "
            f"probe sweep {scenario['probe_recover_seconds']*1000:.0f} ms"
        )
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller table, no 8-expansion scenario (fast CI smoke run)",
    )
    args = parser.parse_args()
    record = run_benchmark(
        SMOKE_ROWS if args.smoke else CENSUS_ROWS,
        SMOKE_EXPANSION_COUNTS if args.smoke else EXPANSION_COUNTS,
    )
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
