"""Incremental search engine: first-pick vs later-pick latency + speedup.

The §6.1 interactivity claim ("display as many rules as we can find
within a 5-second limit") depends on the latency of repeated
`find_best_marginal_rule` calls.  This benchmark times the k=10 greedy
on the census workload under both engines and records:

* per-pick latency for the incremental engine — the first pick builds
  the candidate cache, later picks are CELF heap re-evaluations;
* the wall-clock speedup of the incremental engine over the
  from-scratch greedy (one cold Algorithm 2 run per pick), asserted
  to be at least 3×;
* exact equivalence of the two engines' rule sequences.

A JSON perf record is written next to this file
(``BENCH_incremental_search.json``) so future changes can track the
latency trajectory.  Run via pytest (the ``smoke`` marker selects it:
``pytest benchmarks/bench_incremental_search.py -m smoke``) or
directly::

    PYTHONPATH=src python benchmarks/bench_incremental_search.py [--smoke]

Both modes finish well under a minute; ``--smoke`` runs one repeat
instead of three.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.core import SizeWeight, brs, brs_iter
from repro.datasets import generate_census

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_incremental_search.json"
CENSUS_ROWS = 100_000
N_COLUMNS = 7
K = 10
MW = 5.0
MIN_SPEEDUP = 3.0


def _time_run(table, engine: str) -> float:
    start = time.perf_counter()
    brs(table, SizeWeight(), K, MW, engine=engine)
    return time.perf_counter() - start


def _per_pick_times(table, engine: str) -> list[float]:
    """Latency of each greedy pick, streamed through :func:`brs_iter`."""
    times: list[float] = []
    stream = brs_iter(table, SizeWeight(), MW, engine=engine)
    while len(times) < K:
        start = time.perf_counter()
        result = next(stream, None)
        times.append(time.perf_counter() - start)
        if result is None:
            times.pop()
            break
    return times


def run_benchmark(table, repeats: int = 3) -> dict:
    """Time both engines, check equivalence, and build the perf record."""
    scratch = min(_time_run(table, "scratch") for _ in range(repeats))
    incremental = min(_time_run(table, "incremental") for _ in range(repeats))
    picks_scratch = brs(table, SizeWeight(), K, MW, engine="scratch")
    picks_lazy = brs(table, SizeWeight(), K, MW, engine="incremental")
    identical = [p.rule for p in picks_scratch.picks] == [
        p.rule for p in picks_lazy.picks
    ] and [p.marginal for p in picks_scratch.picks] == [
        p.marginal for p in picks_lazy.picks
    ]
    per_pick = _per_pick_times(table, "incremental")
    later = per_pick[1:] or [0.0]
    stats = picks_lazy.stats
    return {
        "workload": {
            "dataset": "census",
            "rows": table.n_rows,
            "columns": N_COLUMNS,
            "k": K,
            "mw": MW,
            "weighting": "size",
            "repeats": repeats,
        },
        "seed_engine_seconds": round(scratch, 6),
        "incremental_engine_seconds": round(incremental, 6),
        "speedup": round(scratch / incremental, 3),
        "first_pick_seconds": round(per_pick[0], 6),
        "later_pick_mean_seconds": round(sum(later) / len(later), 6),
        "later_vs_first_ratio": round((sum(later) / len(later)) / per_pick[0], 4),
        "identical_rule_lists": identical,
        "incremental_stats": {
            "rows_scanned": stats.rows_scanned,
            "candidates_generated": stats.candidates_generated,
            "cache_hits": stats.cache_hits,
            "lazy_skips": stats.lazy_skips,
        },
        "scratch_stats": {
            "rows_scanned": picks_scratch.stats.rows_scanned,
            "candidates_generated": picks_scratch.stats.candidates_generated,
        },
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    assert record["identical_rule_lists"], "engines disagreed on the rule list"
    assert record["speedup"] >= MIN_SPEEDUP, (
        f"incremental engine speedup {record['speedup']:.2f}x is below the "
        f"{MIN_SPEEDUP}x floor "
        f"({record['seed_engine_seconds']:.3f}s vs "
        f"{record['incremental_engine_seconds']:.3f}s)"
    )
    # Later picks must be much cheaper than the cache-building first pick.
    assert record["later_pick_mean_seconds"] < record["first_pick_seconds"]


@pytest.mark.smoke
def test_incremental_engine_speedup(census):
    """Smoke target: ≥3× on brs(k=10), identical rules, record emitted."""
    record = run_benchmark(census, repeats=1)
    write_record(record)
    print()
    print(
        f"BX incremental search: seed {record['seed_engine_seconds']*1000:.0f} ms, "
        f"incremental {record['incremental_engine_seconds']*1000:.0f} ms "
        f"({record['speedup']:.1f}x); first pick "
        f"{record['first_pick_seconds']*1000:.1f} ms, later picks "
        f"{record['later_pick_mean_seconds']*1000:.2f} ms"
    )
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="single repeat (fast CI smoke run)"
    )
    args = parser.parse_args()
    table = generate_census(CENSUS_ROWS, n_columns=N_COLUMNS)
    record = run_benchmark(table, repeats=1 if args.smoke else 3)
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
