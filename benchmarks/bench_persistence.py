"""Session durability smoke: checkpoint + warm-restart latency vs tree size.

A durable serving tier pays two new costs: writing a session's
snapshot (the reaper's periodic dirty sweep and the shutdown
checkpoint) and restoring it on warm restart (decode + tree replay +
registry admission — *no re-mining*; that is the point).  Both should
scale with the displayed tree, not the table: the snapshot stores the
rule tree **U** and the expansion history, never rows or candidate
lattices.  This benchmark grows one session's tree through 1, 2, 4,
and 8 expansions over a census table and records, per size:

* ``checkpoint_seconds`` — one forced :meth:`DrillDownServer.checkpoint`
  (snapshot under the entry lock + atomic file replace);
* ``snapshot_bytes`` — the on-disk size of the JSON-lines snapshot;
* ``restart_seconds`` — constructing a fresh ``DrillDownServer`` over
  the same ``persist_dir`` and re-registering the table, which admits
  the restored session.

Asserted (structurally — latencies are machine-dependent, recorded
only): every restored session's rendered tree is bit-identical to the
pre-restart render, every restart restores exactly one session, and
snapshots grow with the displayed node count.

A JSON perf record is written next to this file
(``BENCH_persistence.json``).  Run via pytest
(``pytest benchmarks/bench_persistence.py -m smoke``) or directly::

    PYTHONPATH=src python benchmarks/bench_persistence.py [--smoke]

``--smoke`` shrinks the census table (8k rows instead of 20k).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.datasets import generate_census
from repro.serving import DrillDownServer

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_persistence.json"
CENSUS_ROWS = 20_000
SMOKE_ROWS = 8_000
N_COLUMNS = 6
K = 4
MW = 5.0
TREE_EXPANSIONS = (1, 2, 4, 8)


def _grow_tree(server: DrillDownServer, sid: str, n_expansions: int) -> int:
    """Expand breadth-first until ``n_expansions`` drill-downs ran."""
    children = server.expand(sid)
    frontier = [c.rule for c in children]
    done = 1
    while done < n_expansions and frontier:
        rule = frontier.pop(0)
        frontier.extend(c.rule for c in server.expand(sid, rule))
        done += 1
    return done


def run_benchmark(rows: int) -> dict:
    table = generate_census(rows, n_columns=N_COLUMNS)
    scenarios = []
    for n_expansions in TREE_EXPANSIONS:
        with tempfile.TemporaryDirectory(prefix="bench-persist-") as persist_dir:
            server = DrillDownServer(persist_dir=persist_dir)
            server.register_table("census", table)
            sid = server.create_session("census", tenant="bench", k=K, mw=MW)
            ran = _grow_tree(server, sid, n_expansions)
            displayed_nodes = len(server.session(sid).displayed())
            text_before = server.render(sid)

            start = time.perf_counter()
            assert server.checkpoint(sid)
            checkpoint_seconds = time.perf_counter() - start
            snapshot_bytes = (Path(persist_dir) / f"{sid}.jsonl").stat().st_size
            server.close()  # clean sessions: shutdown re-checkpoints nothing

            start = time.perf_counter()
            revived = DrillDownServer(persist_dir=persist_dir)
            revived.register_table("census", table)
            restart_seconds = time.perf_counter() - start
            restored = revived.restored
            identical = revived.render(sid) == text_before
            revived.close()

        scenarios.append(
            {
                "expansions": ran,
                "displayed_nodes": displayed_nodes,
                "checkpoint_seconds": round(checkpoint_seconds, 6),
                "snapshot_bytes": snapshot_bytes,
                "restart_seconds": round(restart_seconds, 6),
                "restored_sessions": restored,
                "identical_render": identical,
            }
        )
    return {
        "workload": {
            "dataset": "census",
            "rows": rows,
            "columns": N_COLUMNS,
            "k": K,
            "mw": MW,
            "weighting": "size",
        },
        "cpu_count": os.cpu_count() or 1,
        "scenarios": scenarios,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    scenarios = record["scenarios"]
    for scenario in scenarios:
        assert scenario["identical_render"], (
            f"restored render diverged at {scenario['expansions']} expansions"
        )
        assert scenario["restored_sessions"] == 1
        assert scenario["snapshot_bytes"] > 0
    by_nodes = sorted(scenarios, key=lambda s: s["displayed_nodes"])
    assert by_nodes[0]["snapshot_bytes"] <= by_nodes[-1]["snapshot_bytes"], (
        "snapshot size should grow with the displayed tree"
    )


@pytest.mark.smoke
def test_persistence_latency():
    """Smoke: checkpoint/warm-restart round trips are bit-identical at
    every tree size, and the record is written."""
    record = run_benchmark(SMOKE_ROWS)
    write_record(record)
    print()
    for scenario in record["scenarios"]:
        print(
            f"BX persistence: {scenario['displayed_nodes']:3d} nodes: "
            f"checkpoint {scenario['checkpoint_seconds']*1000:.1f} ms, "
            f"{scenario['snapshot_bytes']} B, "
            f"restart {scenario['restart_seconds']*1000:.1f} ms"
        )
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="smaller table (fast CI smoke run)"
    )
    args = parser.parse_args()
    record = run_benchmark(SMOKE_ROWS if args.smoke else CENSUS_ROWS)
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
