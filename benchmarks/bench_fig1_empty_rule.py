"""F1: Figure 1 — summary after expanding the empty rule (Marketing).

Size weighting, k = 4, mw = 5 (the paper's Section 5 defaults).
Asserts the exact four-rule set the paper's screenshot reports.
"""

from __future__ import annotations

from repro.core import SizeWeight, brs
from repro.experiments import run_fig1_empty_rule


def test_fig1_rules_and_runtime(benchmark, marketing7):
    wf = SizeWeight()
    result = benchmark(lambda: brs(marketing7, wf, 4, 5.0))
    got = {(str(e.rule), int(e.count)) for e in result.rule_list}
    assert got == {
        ("(?, Female, ?, ?, ?, ?, ?)", 4918),
        ("(?, Male, ?, ?, ?, ?, ?)", 4075),
        ("(?, Female, ?, ?, ?, ?, >10 years)", 2940),
        ("(?, Male, Never married, ?, ?, ?, >10 years)", 980),
    }


def test_fig1_transcript(benchmark):
    result = benchmark(run_fig1_empty_rule)
    print()
    print(result.name)
    print(result.text)
