"""T1–T3: the Example 1 retail transcript (paper Tables 1–3).

Benchmarks the first smart drill-down on the 6000-row department-store
table and asserts the exact Table 2 / Table 3 rule sets.
"""

from __future__ import annotations

from repro.core import Rule, SizeWeight, brs, rule_drilldown
from repro.experiments import run_tables_1_2_3


def test_table2_first_drilldown(benchmark, retail):
    wf = SizeWeight()
    result = benchmark(lambda: brs(retail, wf, 3, 3.0))
    got = {(str(e.rule), int(e.count)) for e in result.rule_list}
    assert got == {
        ("(Target, bicycles, ?, ?)", 200),
        ("(?, comforters, MA-3, ?)", 600),
        ("(Walmart, ?, ?, ?)", 1000),
    }


def test_table3_walmart_expansion(benchmark, retail):
    wf = SizeWeight()
    walmart = Rule.from_named(retail, Store="Walmart")
    result = benchmark(lambda: rule_drilldown(retail, walmart, wf, 3, 3.0))
    got = {(str(e.rule), int(e.count)) for e in result.rule_list}
    assert got == {
        ("(Walmart, cookies, ?, ?)", 200),
        ("(Walmart, ?, CA-1, ?)", 150),
        ("(Walmart, ?, WA-5, ?)", 130),
    }


def test_print_transcript(benchmark):
    """Render both tables (the paper-vs-measured transcript)."""
    table2, table3 = benchmark(run_tables_1_2_3)
    print()
    print(table2.name)
    print(table2.text)
    print()
    print(table3.name)
    print(table3.text)
