"""F8(a): Figure 8(a) — expansion time vs the ``minSS`` parameter.

Expected shape (paper §5.2.2): BRS time on a sample grows roughly
linearly in the sample size, so the curve rises with minSS; the
Marketing series is dominated by the ``b·minSS`` term, the Census
series by the scan that creates the sample.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SizeWeight, brs
from repro.experiments import report_table, run_minss_sweep, trend_slope

MINSS_VALUES = [250, 500, 1000, 2000, 4000, 8000]


@pytest.mark.parametrize("minss", [1000, 5000])
def test_brs_on_sample(benchmark, census, minss):
    rng = np.random.default_rng(0)
    idx = np.sort(rng.choice(census.n_rows, size=minss, replace=False))
    sample = census.take(idx)
    result = benchmark(lambda: brs(sample, SizeWeight(), 4, 5.0))
    assert len(result.rules) == 4


def test_fig8a_sweep_shape(benchmark, marketing7, census):
    def sweep():
        return {
            "Marketing size": run_minss_sweep(
                marketing7, "size", MINSS_VALUES, iterations=3, seed=0
            ),
            "Census size": run_minss_sweep(
                census, "size", MINSS_VALUES, iterations=3, seed=0
            ),
            "Census bits": run_minss_sweep(
                census, "bits", MINSS_VALUES, iterations=3, seed=0, mw=20.0
            ),
        }

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for name, points in series.items():
        times = [p.seconds for p in points]
        slope = trend_slope([p.min_sample_size for p in points], times)
        rows.append([name] + [f"{t * 1000:.1f}" for t in times] + [f"{slope * 1e6:.2f}"])
        # Paper shape: time grows with minSS.
        assert slope > 0
    print()
    print(
        report_table(
            "Figure 8(a) — BRS time (ms) vs minSS",
            ["series"] + [f"minSS={v}" for v in MINSS_VALUES] + ["slope us/tuple"],
            rows,
        )
    )
