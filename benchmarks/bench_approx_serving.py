"""Approximate serving: exact vs sampled expansion latency and error.

The Section 4 pitch is that mining on a bounded sample makes
interactive drill-down cheap at a quantified accuracy cost.  This
benchmark measures that trade through the serving tier itself: a
:class:`~repro.serving.DrillDownServer` over one census table serves
the same two-level workload (expand the root, then the heaviest
child) exactly and approximately across a range of ``sample_budget``
settings, recording per-expansion latency, the realized percent error
of every approximate count (Figure 8(b)'s metric, against exact
counts from the same expansion parents), and how often the
``error_target`` escalation fired.

Asserted (structurally — latencies are machine-dependent and merely
recorded):

* every approximate child carries full estimate metadata, and its
  confidence interval is coherent (``low <= estimate <= high``);
* the mean realized percent error does not increase when the sample
  budget grows 8x (more tuples, tighter estimates);
* at a tight ``error_target`` the tier escalates and returns exactly
  the exact session's rule list — the convergence contract;
* exact expansions on a sampling-enabled tier return no estimate
  metadata at all.

A JSON perf record is written next to this file
(``BENCH_approx_serving.json``).  Run via pytest
(``pytest benchmarks/bench_approx_serving.py -m smoke``) or directly::

    PYTHONPATH=src python benchmarks/bench_approx_serving.py [--smoke]

``--smoke`` shrinks the census table (10k rows instead of 40k) and
drops the largest budget.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro.core import count
from repro.core.rule import Rule
from repro.datasets import generate_census
from repro.sampling import percent_error
from repro.serving import DrillDownServer

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_approx_serving.json"
CENSUS_ROWS = 40_000
SMOKE_ROWS = 10_000
N_COLUMNS = 6
K = 5
MW = 5.0
BUDGETS = (500, 1_000, 2_000, 4_000)
SMOKE_BUDGETS = (500, 1_000, 2_000)
ERROR_TARGET = 5.0  # loose: stay on the sample, measure its honest error
REPEATS = 5


def _workload(server: DrillDownServer, *, approx: bool) -> tuple[list, list, float]:
    """One session's two-level expansion; returns (level1, level2, seconds)."""
    sid = server.create_session("census", k=K, mw=MW)
    root = Rule.trivial(N_COLUMNS)
    kwargs = {"approx": True, "error_target": ERROR_TARGET} if approx else {}
    start = time.perf_counter()
    level1 = server.expand(sid, root, **kwargs)
    heaviest = max(level1, key=lambda c: c.count)
    level2 = server.expand(sid, heaviest.rule, **kwargs)
    elapsed = time.perf_counter() - start
    server.close_session(sid)
    return level1, level2, elapsed


def _exact_counts(server: DrillDownServer, children: list) -> dict:
    """True counts for the rules an approximate expansion returned."""
    table = server.catalog.get("census")
    return {tuple(c.rule): count(c.rule, table) for c in children}


def run_benchmark(rows: int, budgets=BUDGETS) -> dict:
    table = generate_census(rows, n_columns=N_COLUMNS, seed=2016)
    scenarios = []

    # Exact baseline: a tier with sampling configured, asked for exact —
    # pins that the estimate machinery is pay-only-when-asked.
    with DrillDownServer(sample_budget=budgets[0]) as server:
        server.register_table("census", table)
        exact_times = []
        for _ in range(REPEATS):
            level1, level2, elapsed = _workload(server, approx=False)
            exact_times.append(elapsed)
        assert all(c.estimate is None for c in level1 + level2)
        exact_rules = [tuple(c.rule) for c in level1]
        scenarios.append(
            {
                "mode": "exact",
                "sample_budget": None,
                "mean_seconds_per_workload": round(sum(exact_times) / len(exact_times), 6),
                "best_seconds_per_workload": round(min(exact_times), 6),
            }
        )

    escalation_matches_exact = True
    interval_coherent = True
    mean_errors = {}
    for budget in budgets:
        with DrillDownServer(sample_budget=budget) as server:
            server.register_table("census", table)
            times = []
            errors = []
            escalated = 0
            for _ in range(REPEATS):
                level1, level2, elapsed = _workload(server, approx=True)
                times.append(elapsed)
                children = level1 + level2
                truths = _exact_counts(server, children)
                for child in children:
                    est = child.estimate
                    interval_coherent = interval_coherent and (
                        est is not None and est["low"] <= est["estimate"] <= est["high"]
                    )
                    if est["escalated"]:
                        escalated += 1
                    errors.append(percent_error(child.count, truths[tuple(child.rule)]))
            # Convergence: a tight target must reproduce the exact list.
            sid = server.create_session("census", k=K, mw=MW)
            tight = server.expand(
                sid, Rule.trivial(N_COLUMNS), approx=True, error_target=1e-12
            )
            escalation_matches_exact = escalation_matches_exact and (
                [tuple(c.rule) for c in tight] == exact_rules
            )
            server.close_session(sid)
            mean_error = sum(errors) / len(errors)
            mean_errors[budget] = mean_error
            scenarios.append(
                {
                    "mode": "approx",
                    "sample_budget": budget,
                    "error_target": ERROR_TARGET,
                    "mean_seconds_per_workload": round(sum(times) / len(times), 6),
                    "best_seconds_per_workload": round(min(times), 6),
                    "mean_percent_error": round(mean_error, 3),
                    "max_percent_error": round(max(errors), 3),
                    "escalated_children": escalated,
                    "children_measured": len(errors),
                }
            )
    return {
        "workload": {
            "dataset": "census",
            "rows": rows,
            "columns": N_COLUMNS,
            "k": K,
            "mw": MW,
            "weighting": "size",
            "expansions_per_workload": 2,
            "repeats": REPEATS,
        },
        "cpu_count": os.cpu_count() or 1,
        "scenarios": scenarios,
        "interval_coherent": interval_coherent,
        "tight_target_matches_exact": escalation_matches_exact,
        "error_shrinks_with_budget": mean_errors[budgets[-1]] <= mean_errors[budgets[0]] + 1e-9,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    assert record["interval_coherent"], "an estimate's interval excluded its own point"
    assert record["tight_target_matches_exact"], (
        "a tight error_target failed to reproduce the exact rule list"
    )
    assert record["error_shrinks_with_budget"], (
        "mean percent error grew when the sample budget was scaled up"
    )


@pytest.mark.smoke
def test_approx_serving_latency_and_error():
    """Smoke: exact vs 3 sample budgets on a 10k census table."""
    record = run_benchmark(SMOKE_ROWS, SMOKE_BUDGETS)
    write_record(record)
    print()
    for scenario in record["scenarios"]:
        label = scenario["sample_budget"] or "exact"
        line = (
            f"BX approx serving [{label}]: "
            f"{scenario['mean_seconds_per_workload']*1000:.0f} ms/workload"
        )
        if scenario["mode"] == "approx":
            line += (
                f", mean err {scenario['mean_percent_error']:.1f}%"
                f", escalated {scenario['escalated_children']}"
            )
        print(line)
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller table, fewer budgets (fast CI smoke run)",
    )
    args = parser.parse_args()
    record = run_benchmark(
        SMOKE_ROWS if args.smoke else CENSUS_ROWS,
        SMOKE_BUDGETS if args.smoke else BUDGETS,
    )
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
