"""F2: Figure 2 — star drill-down on the Education column (Marketing).

Clicking the ``?`` in Education of the Female rule lists the most
frequent education levels among females.
"""

from __future__ import annotations

from repro.core import Rule, SizeWeight, star_drilldown
from repro.experiments import run_fig2_star_education


def test_fig2_star_education(benchmark, marketing7):
    female = Rule.from_named(marketing7, Sex="Female")
    wf = SizeWeight()
    result = benchmark(
        lambda: star_drilldown(marketing7, female, "Education", wf, 4, 5.0)
    )
    edu_idx = marketing7.schema.index_of("Education")
    assert len(result.rules) == 4
    for rule in result.rules:
        assert not rule.is_star(edu_idx)
        assert rule[1] == "Female"


def test_fig2_transcript(benchmark):
    result = benchmark(run_fig2_star_education)
    print()
    print(result.name)
    print(result.text)
