"""Cold-session first-expand latency: first-pick marginal cache on/off.

Every fresh session's first expansion pays a full level-1 scan over
every categorical column before the greedy pick; the registration-time
first-pick cache (``repro.core.first_pick``) precomputes those vectors
once per ``(table, weighting, mw)`` and serves them read-only, turning
the first pass into a heap-build over cached arrays.  This benchmark
drives cold sessions — ``share_contexts=False``, so no prototype
warm-start hides the first pass — through routers of 1, 2, and 4
shards with the cache enabled and disabled, and records the
first-expand latency of each arm.  The workload (``mw=2.0``, 100k-row
census tables) keeps the post-first-pass search small, so the latency
difference isolates what the cache actually removes: the cold level-1
scan.

Asserted (structurally — absolute numbers are machine-dependent):

* every session's first-expansion rule list is identical with the
  cache on and off, at every shard count (the bit-identity contract);
* the cache-on arm really served cached first picks (hit counters from
  ``/stats`` cover every session);
* with the cache on, mean cold first-expand latency does not regress
  (and the recorded speedup shows the improvement).

A JSON perf record is written next to this file
(``BENCH_marginal_cache.json``).  Run via pytest
(``pytest benchmarks/bench_marginal_cache.py -m smoke``) or directly::

    PYTHONPATH=src python benchmarks/bench_marginal_cache.py [--smoke]

``--smoke`` shrinks the census tables and drops the 4-shard scenario.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import pytest

from repro.datasets import generate_census
from repro.serving import ShardRouter

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_marginal_cache.json"
CENSUS_ROWS = 100_000
SMOKE_ROWS = 30_000
N_COLUMNS = 6
N_TABLES = 2
K = 3
MW = 2.0
SESSIONS = 32
SMOKE_SESSIONS = 12
SHARD_COUNTS = (1, 2, 4)
SMOKE_SHARD_COUNTS = (1, 2)


def _make_tables(rows: int) -> dict:
    return {
        f"census-{i}": generate_census(rows, n_columns=N_COLUMNS, seed=2024 + i)
        for i in range(N_TABLES)
    }


def _marginal_hits(router: ShardRouter) -> int:
    """Total first-pick cache hits across every shard's catalog."""
    hits = 0
    for shard in router.stats()["shards"]:
        server = shard.get("server") or {}
        for per_table in server.get("marginals", {}).get("tables", {}).values():
            for counters in per_table.values():
                hits += counters["hits"]
    return hits


def _drive_cold_sessions(router: ShardRouter, table_names: list, n_sessions: int):
    """``n_sessions`` cold create+first-expand cycles, round-robin over
    the tables; returns (per-session latencies, per-table rule lists)."""
    latencies: list[float] = []
    rules: dict[str, tuple] = {}
    for i in range(n_sessions):
        name = table_names[i % len(table_names)]
        sid = router.create_session(name, tenant=f"tenant-{i}", k=K, mw=MW)
        start = time.perf_counter()
        children = router.expand(sid)
        latencies.append(time.perf_counter() - start)
        picked = tuple(tuple(c.rule) for c in children)
        assert rules.setdefault(name, picked) == picked
        router.close_session(sid)
    return latencies, rules


def run_benchmark(rows: int, shard_counts=SHARD_COUNTS, n_sessions=SESSIONS) -> dict:
    tables = _make_tables(rows)
    table_names = sorted(tables)
    scenarios = []
    identical = True
    for n_shards in shard_counts:
        per_table_rules: dict[bool, dict] = {}
        for enabled in (False, True):
            with ShardRouter(
                n_shards, share_contexts=False, marginal_cache=enabled, marginal_mw=MW
            ) as router:
                for name, table in tables.items():
                    router.register_table(name, table)
                # Warm-up: pays first-touch costs (wire decode, fork
                # lazies) outside the timing; contexts are not shared,
                # so later sessions stay genuinely cold.
                _drive_cold_sessions(router, table_names, len(table_names))
                hits_before = _marginal_hits(router)
                latencies, rules = _drive_cold_sessions(router, table_names, n_sessions)
                hits = _marginal_hits(router) - hits_before
            per_table_rules[enabled] = rules
            latencies.sort()
            scenarios.append(
                {
                    "n_shards": n_shards,
                    "marginal_cache": enabled,
                    "sessions": n_sessions,
                    "cache_hits": hits,
                    "mean_first_expand_seconds": round(
                        sum(latencies) / len(latencies), 6
                    ),
                    "median_first_expand_seconds": round(
                        latencies[len(latencies) // 2], 6
                    ),
                    "p95_first_expand_seconds": round(
                        latencies[int(0.95 * (len(latencies) - 1))], 6
                    ),
                    "min_first_expand_seconds": round(latencies[0], 6),
                }
            )
        identical = identical and per_table_rules[False] == per_table_rules[True]
    return {
        "workload": {
            "dataset": "census",
            "tables": N_TABLES,
            "rows_per_table": rows,
            "columns": N_COLUMNS,
            "k": K,
            "mw": MW,
            "weighting": "size",
            "share_contexts": False,
        },
        "cpu_count": os.cpu_count() or 1,
        "scenarios": scenarios,
        "identical_rule_lists": identical,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    assert record["identical_rule_lists"], "cache on/off rule lists diverged"
    by_key = {(s["n_shards"], s["marginal_cache"]): s for s in record["scenarios"]}
    for (n_shards, enabled), scenario in by_key.items():
        if enabled:
            assert scenario["cache_hits"] >= scenario["sessions"], (
                f"{n_shards}-shard cache-on run served only "
                f"{scenario['cache_hits']} cached first picks for "
                f"{scenario['sessions']} sessions"
            )
        else:
            assert scenario["cache_hits"] == 0
    for n_shards in {k[0] for k in by_key}:
        on = by_key[(n_shards, True)]["median_first_expand_seconds"]
        off = by_key[(n_shards, False)]["median_first_expand_seconds"]
        # Improvement is the point, but single-core CI boxes are noisy;
        # the hard gate is "no regression", the speedup is recorded.
        assert on <= off * 1.10, (
            f"{n_shards}-shard cold first-expand regressed with the cache on: "
            f"{on * 1000:.2f} ms vs {off * 1000:.2f} ms"
        )


@pytest.mark.smoke
def test_marginal_cache_first_expand():
    """Smoke: 1 vs 2 shards, cold first-expands, cache on vs off."""
    record = run_benchmark(SMOKE_ROWS, SMOKE_SHARD_COUNTS, SMOKE_SESSIONS)
    write_record(record)
    print()
    for scenario in record["scenarios"]:
        state = "on " if scenario["marginal_cache"] else "off"
        print(
            f"BX marginal cache {state}: {scenario['n_shards']} shard(s): "
            f"mean {scenario['mean_first_expand_seconds'] * 1000:.2f} ms, "
            f"p95 {scenario['p95_first_expand_seconds'] * 1000:.2f} ms, "
            f"{scenario['cache_hits']} hits"
        )
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller tables, no 4-shard scenario (fast CI smoke run)",
    )
    args = parser.parse_args()
    record = run_benchmark(
        SMOKE_ROWS if args.smoke else CENSUS_ROWS,
        SMOKE_SHARD_COUNTS if args.smoke else SHARD_COUNTS,
        SMOKE_SESSIONS if args.smoke else SESSIONS,
    )
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
