"""X4: §6.3 — Sum aggregation over a measure column (retail Sales).

Replacing Count with Sum changes which rules matter (a rare but
expensive product can outrank a frequent cheap one); the benchmark
asserts the machinery works end-to-end and times the Sum variant.
"""

from __future__ import annotations

from repro.core import SizeWeight, brs, tuple_measures
from repro.experiments import report_table, run_sum_aggregate_ablation
from repro.ui import render_rule_list


def test_sum_brs(benchmark, retail):
    measures = tuple_measures(retail, "Sales")
    result = benchmark(lambda: brs(retail, SizeWeight(), 3, 3.0, measures=measures))
    assert len(result.rules) == 3
    # Score is in sales units: far larger than tuple counts.
    assert result.score > 6000


def test_count_vs_sum_summary(benchmark, retail):
    ablation = benchmark.pedantic(
        lambda: run_sum_aggregate_ablation(retail, "Sales"), rounds=1, iterations=1
    )
    print()
    print(
        report_table(
            "§6.3 — Count vs Sum(Sales) summaries (retail)",
            ["aggregate", "rules", "score"],
            [
                ["Count", "; ".join(str(r) for r in ablation.count_rules), f"{ablation.count_score:,.0f}"],
                ["Sum", "; ".join(str(r) for r in ablation.sum_rules), f"{ablation.sum_score:,.0f}"],
            ],
        )
    )
    assert ablation.sum_score > 0
