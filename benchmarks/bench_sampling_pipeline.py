"""End-to-end sampled interaction cost (SampleHandler + session, §4.3).

Times the three access paths the paper's response-time story depends
on: the initial Create pass, a Find re-service, and a Combine-served
sub-drill-down; plus one full prefetch-enabled exploration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Rule, SizeWeight, brs
from repro.datasets import generate_census
from repro.sampling import SampleHandler
from repro.session import DrillDownSession
from repro.storage import DiskTable


@pytest.fixture(scope="module")
def census_disk_table():
    return generate_census(100_000, n_columns=7, seed=21)


def test_create_path(benchmark, census_disk_table):
    def create():
        disk = DiskTable(census_disk_table)
        handler = SampleHandler(
            disk, memory_capacity=50_000, min_sample_size=5_000,
            rng=np.random.default_rng(0),
        )
        sample, method = handler.get_sample(Rule.trivial(7))
        assert method == "create"
        return sample

    sample = benchmark(create)
    assert sample.size >= 5_000


def test_find_path(benchmark, census_disk_table):
    disk = DiskTable(census_disk_table)
    handler = SampleHandler(
        disk, memory_capacity=50_000, min_sample_size=5_000,
        rng=np.random.default_rng(0),
    )
    handler.get_sample(Rule.trivial(7))

    def find():
        sample, method = handler.get_sample(Rule.trivial(7))
        assert method == "find"
        return sample

    benchmark(find)


def test_full_exploration_with_prefetch(benchmark, census_disk_table):
    def explore():
        disk = DiskTable(census_disk_table)
        session = DrillDownSession(
            disk,
            k=3,
            mw=5.0,
            memory_capacity=50_000,
            min_sample_size=5_000,
            rng=np.random.default_rng(1),
        )
        children = session.expand(session.root.rule)
        session.expand(children[0].rule)
        return session

    session = benchmark.pedantic(explore, rounds=2, iterations=1)
    # The second expansion is served from memory thanks to prefetch.
    assert session.history[1].sample_method in ("find", "combine")
