"""F7: Figure 7 — the max(0, Size−1) weighting summary (Marketing).

Zero weight for single-column rules forces the optimiser to display
rules with at least two instantiated columns (§5.1.2).
"""

from __future__ import annotations

from repro.core import SizeMinusOneWeight, brs
from repro.experiments import run_fig7_size_minus_one


def test_fig7_size_minus_one(benchmark, marketing7):
    wf = SizeMinusOneWeight()
    result = benchmark(lambda: brs(marketing7, wf, 4, 5.0))
    assert all(r.size >= 2 for r in result.rules)


def test_fig7_transcript(benchmark):
    result = benchmark(run_fig7_size_minus_one)
    print()
    print(result.name)
    print(result.text)
