"""Sharded serving throughput: 1 vs N shard processes, multi-tenant.

One :class:`~repro.serving.DrillDownServer` process serialises every
tenant's mining behind one GIL and one pipe; the
:class:`~repro.serving.ShardRouter` spreads *tables* (and therefore
their sessions) across N worker processes via consistent hashing.
This benchmark drives a multi-tenant workload — 8 tenants, 4 census
tables, each tenant expanding the root and then its first child on its
own table — through routers of 1, 2, and 4 shards and records
throughput and latency per topology.

Asserted (structurally — latency numbers are machine-dependent and
merely recorded):

* every tenant's rule lists are identical to a standalone
  :class:`~repro.session.DrillDownSession` on the same table, at every
  shard count — sharding changes where work runs, never which rules win;
* tables actually spread across shards (N >= 2 places them on more
  than one worker);
* on hosts with >= 4 cores, 4 shards beat 1 shard on wall-clock
  throughput by >= 1.2x (skipped on smaller hosts — the dev container
  is single-core, where process parallelism cannot pay).

A JSON perf record is written next to this file
(``BENCH_sharded_serving.json``).  Run via pytest
(``pytest benchmarks/bench_sharded_serving.py -m smoke``) or directly::

    PYTHONPATH=src python benchmarks/bench_sharded_serving.py [--smoke]

``--smoke`` shrinks the census tables (8k rows instead of 20k) and
drops the 4-shard scenario.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.datasets import generate_census
from repro.serving import ShardRouter
from repro.session import DrillDownSession

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_sharded_serving.json"
CENSUS_ROWS = 20_000
SMOKE_ROWS = 8_000
N_COLUMNS = 5
N_TABLES = 4
N_TENANTS = 8
K = 3
MW = 5.0
SHARD_COUNTS = (1, 2, 4)
SMOKE_SHARD_COUNTS = (1, 2)


def _make_tables(rows: int) -> dict:
    """Four distinct census tables (different seeds, same scale)."""
    return {
        f"census-{i}": generate_census(rows, n_columns=N_COLUMNS, seed=1990 + i)
        for i in range(N_TABLES)
    }


def _expected_rules(tables: dict) -> dict:
    """Per table: the standalone two-level expansion every tenant must match."""
    expected = {}
    for name, table in tables.items():
        session = DrillDownSession(table, k=K, mw=MW)
        level1 = session.expand(session.root.rule)
        level2 = session.expand(level1[0].rule)
        expected[name] = (
            [tuple(c.rule) for c in level1],
            [tuple(c.rule) for c in level2],
        )
        session.close()
    return expected


def _drive_tenants(router: ShardRouter, table_names: list, n_tenants: int) -> dict:
    """Every tenant's two-expansion workload on its own thread."""
    latencies: list[float] = []
    results: dict[int, tuple] = {}
    errors: list[Exception] = []
    lock = threading.Lock()

    def tenant_run(i: int) -> None:
        try:
            table = table_names[i % len(table_names)]
            sid = router.create_session(table, tenant=f"tenant-{i}", k=K, mw=MW)
            start = time.perf_counter()
            level1 = router.expand(sid)
            mid = time.perf_counter()
            level2 = router.expand(sid, level1[0].rule)
            done = time.perf_counter()
            with lock:
                latencies.extend((mid - start, done - mid))
                results[i] = (
                    table,
                    [tuple(c.rule) for c in level1],
                    [tuple(c.rule) for c in level2],
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=tenant_run, args=(i,)) for i in range(n_tenants)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    latencies.sort()
    expansions = 2 * n_tenants
    return {
        "tenants": n_tenants,
        "expansions": expansions,
        "wall_seconds": round(elapsed, 6),
        "throughput_expansions_per_s": round(expansions / elapsed, 3),
        "mean_latency_seconds": round(sum(latencies) / len(latencies), 6),
        "p95_latency_seconds": round(latencies[int(0.95 * (len(latencies) - 1))], 6),
        "_results": results,
    }


def run_benchmark(rows: int, shard_counts=SHARD_COUNTS) -> dict:
    tables = _make_tables(rows)
    table_names = sorted(tables)
    expected = _expected_rules(tables)
    scenarios = []
    identical = True
    for n_shards in shard_counts:
        with ShardRouter(n_shards) as router:
            for name, table in tables.items():
                router.register_table(name, table)
            placement = {name: router.shard_of_table(name) for name in table_names}
            # Warm-up pass: forks nothing new but pays first-touch costs
            # (table decode caches, context builds) outside the timing.
            _drive_tenants(router, table_names, len(table_names))
            scenario = _drive_tenants(router, table_names, N_TENANTS)
            results = scenario.pop("_results")
            identical = identical and all(
                (l1, l2) == expected[table] for table, l1, l2 in results.values()
            )
            scenario["n_shards"] = n_shards
            scenario["shards_used"] = len(set(placement.values()))
            scenario["placement"] = placement
            scenario["restarts"] = router.restarts
            scenarios.append(scenario)
    return {
        "workload": {
            "dataset": "census",
            "tables": N_TABLES,
            "rows_per_table": rows,
            "columns": N_COLUMNS,
            "k": K,
            "mw": MW,
            "weighting": "size",
            "tenants": N_TENANTS,
            "expansions_per_tenant": 2,
        },
        "cpu_count": os.cpu_count() or 1,
        "scenarios": scenarios,
        "identical_rule_lists": identical,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    assert record["identical_rule_lists"], "a tenant diverged from the standalone session"
    by_shards = {s["n_shards"]: s for s in record["scenarios"]}
    for n_shards, scenario in by_shards.items():
        assert scenario["restarts"] == 0, "a shard crashed during the benchmark"
        assert scenario["shards_used"] == min(n_shards, N_TABLES), (
            f"{n_shards}-shard run placed {N_TABLES} tables on only "
            f"{scenario['shards_used']} shard(s)"
        )
    if record["cpu_count"] >= 4 and 4 in by_shards and 1 in by_shards:
        speedup = (
            by_shards[4]["throughput_expansions_per_s"]
            / by_shards[1]["throughput_expansions_per_s"]
        )
        assert speedup >= 1.2, (
            f"4 shards only {speedup:.2f}x the single-shard throughput "
            f"on a {record['cpu_count']}-core host"
        )


@pytest.mark.smoke
def test_sharded_serving_throughput():
    """Smoke: 1 vs 2 shards, 8 tenants over 4 tables — identical rules."""
    record = run_benchmark(SMOKE_ROWS, SMOKE_SHARD_COUNTS)
    write_record(record)
    print()
    for scenario in record["scenarios"]:
        print(
            f"BX sharded serving: {scenario['n_shards']} shard(s) "
            f"({scenario['shards_used']} used): "
            f"{scenario['throughput_expansions_per_s']:.1f} exp/s, "
            f"mean {scenario['mean_latency_seconds']*1000:.0f} ms"
        )
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller tables, no 4-shard scenario (fast CI smoke run)",
    )
    args = parser.parse_args()
    record = run_benchmark(
        SMOKE_ROWS if args.smoke else CENSUS_ROWS,
        SMOKE_SHARD_COUNTS if args.smoke else SHARD_COUNTS,
    )
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
