"""X2: ablation — the Algorithm 2 a-priori pruning bound.

Same output with and without the bound; the benchmark quantifies the
work saved (rows scanned, candidates generated) and the wall-time gap.
"""

from __future__ import annotations

from repro.core import SizeWeight, brs
from repro.experiments import report_table, run_pruning_ablation


def test_pruned_search(benchmark, marketing7):
    result = benchmark(lambda: brs(marketing7, SizeWeight(), 4, 5.0, prune=True))
    assert len(result.rules) == 4


def test_unpruned_search(benchmark, marketing7):
    result = benchmark(lambda: brs(marketing7, SizeWeight(), 4, 5.0, prune=False))
    assert len(result.rules) == 4


def test_pruning_saves_work(benchmark, marketing7, census):
    def run():
        return {
            "Marketing": run_pruning_ablation(marketing7, SizeWeight()),
            "Census": run_pruning_ablation(census, SizeWeight()),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, ablation in results.items():
        assert ablation.same_rules  # pruning never changes the answer
        assert ablation.pruned_rows_scanned < ablation.unpruned_rows_scanned
        rows.append(
            [
                name,
                f"{ablation.pruned_rows_scanned:,}",
                f"{ablation.unpruned_rows_scanned:,}",
                f"{ablation.rows_saved_fraction:.1%}",
                f"{ablation.pruned_candidates:,}",
                f"{ablation.unpruned_candidates:,}",
            ]
        )
    print()
    print(
        report_table(
            "Ablation — a-priori pruning (identical output)",
            ["dataset", "rows scanned", "rows (no prune)", "saved", "cands", "cands (no prune)"],
            rows,
        )
    )
