"""Append-a-batch latency: incremental version maintenance vs re-register.

Before versioned tables the only way to grow a registered table was
``unregister`` + ``register`` with a freshly built table — a cold
rebuild of everything the catalog maintains per table: the
shared-memory pool export, the registration-time first-pick marginal
cache, and the §4.3 sample set.  ``append_rows`` instead creates a new
version whose export is grown by copying the old segments and writing
only the appended tail, whose level-1 marginals are delta-folded in
O(appended rows), and whose sample set rebuilds lazily once.

This benchmark drives both maintenance strategies over the same
append schedule — a seeded categorical table growing by fixed batches
— and records per-batch latency for each arm.

Asserted (structurally — absolute numbers are machine-dependent):

* after every batch both arms hold **bit-identical first-pick
  vectors** (the incremental cache equals a cold build over the same
  rows) and identical sample sets;
* the incremental arm's export really grew in place
  (``exports_grown`` covers every batch) and its marginals really took
  the delta path (``marginals_delta`` covers every batch);
* mean incremental append latency beats the full re-register arm.

A JSON perf record is written next to this file
(``BENCH_append_tables.json``).  Run via pytest
(``pytest benchmarks/bench_append_tables.py -m smoke``) or directly::

    PYTHONPATH=src python benchmarks/bench_append_tables.py [--smoke]

``--smoke`` shrinks the base table and the append schedule.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.parallel import CountingPool
from repro.serving import TableCatalog
from repro.table import Schema, Table

RECORD_PATH = Path(__file__).resolve().parent / "BENCH_append_tables.json"
BASE_ROWS = 200_000
SMOKE_BASE_ROWS = 40_000
BATCH_ROWS = 2_000
SMOKE_BATCH_ROWS = 500
N_BATCHES = 8
SMOKE_BATCHES = 4
N_COLUMNS = 5
DOMAIN = 40
SAMPLE_BUDGET = 256
MW = 5.0
SEED = 7


def _make_rows(rng: np.random.Generator, n_rows: int) -> list:
    codes = rng.integers(DOMAIN, size=(n_rows, N_COLUMNS))
    return [tuple(f"v{c}" for c in row) for row in codes]


def _lite_pool() -> CountingPool:
    """Exports are real shared memory; counting stays local, so the
    timings isolate maintenance cost from worker dispatch noise."""
    return CountingPool(2, min_table_rows=1, min_task_rows=10**9)


def _first_pick_vectors(catalog: TableCatalog, name: str) -> tuple:
    cache = catalog.marginals_for(name, "size", MW)
    assert cache is not None, "the size-weighting first-pick cache must exist"
    return tuple(
        None
        if entry is None
        else (entry[1].tobytes(), entry[2].tobytes(), entry[3].tobytes())
        for entry in cache.entries
    )


def _sample_key(catalog: TableCatalog, name: str) -> tuple:
    samples = catalog.samples_for(name)
    assert samples is not None
    return tuple(np.asarray(s.row_ids).tobytes() for s in samples.samples)


def run_benchmark(base_rows: int, batch_rows: int, n_batches: int) -> dict:
    rng = np.random.default_rng(SEED)
    schema = Schema.categorical([f"c{i}" for i in range(N_COLUMNS)])
    all_rows = _make_rows(rng, base_rows)
    batches = [_make_rows(rng, batch_rows) for _ in range(n_batches)]
    base = Table.from_rows(schema, all_rows)

    incremental_pool, full_pool = _lite_pool(), _lite_pool()
    incremental = TableCatalog(
        pool=incremental_pool, sample_budget=SAMPLE_BUDGET, marginal_mw=MW
    )
    full = TableCatalog(pool=full_pool, sample_budget=SAMPLE_BUDGET, marginal_mw=MW)
    incremental_latencies: list[float] = []
    full_latencies: list[float] = []
    vectors_identical = samples_identical = True
    try:
        incremental.register("t", base)
        full.register("t", Table.from_rows(schema, all_rows))
        for batch in batches:
            start = time.perf_counter()
            incremental.append_rows("t", batch)
            incremental.samples_for("t")  # lazy rebuild is part of the cost
            incremental_latencies.append(time.perf_counter() - start)

            all_rows = all_rows + batch
            start = time.perf_counter()
            full.unregister("t")
            full.register("t", Table.from_rows(schema, all_rows))
            full.samples_for("t")
            full_latencies.append(time.perf_counter() - start)

            vectors_identical = vectors_identical and (
                _first_pick_vectors(incremental, "t")
                == _first_pick_vectors(full, "t")
            )
            samples_identical = samples_identical and (
                _sample_key(incremental, "t") == _sample_key(full, "t")
            )
        version_stats = incremental.version_stats()
    finally:
        incremental.close()
        full.close()
        incremental_pool.close()
        full_pool.close()

    def _arm(latencies: list[float]) -> dict:
        ordered = sorted(latencies)
        return {
            "batches": len(ordered),
            "mean_seconds": round(sum(ordered) / len(ordered), 6),
            "median_seconds": round(ordered[len(ordered) // 2], 6),
            "max_seconds": round(ordered[-1], 6),
        }

    mean_inc = sum(incremental_latencies) / len(incremental_latencies)
    mean_full = sum(full_latencies) / len(full_latencies)
    return {
        "workload": {
            "base_rows": base_rows,
            "batch_rows": batch_rows,
            "batches": n_batches,
            "columns": N_COLUMNS,
            "domain": DOMAIN,
            "sample_budget": SAMPLE_BUDGET,
            "marginal_mw": MW,
            "weighting": "size",
        },
        "cpu_count": os.cpu_count() or 1,
        "incremental_append": _arm(incremental_latencies),
        "full_reregister": _arm(full_latencies),
        "speedup": round(mean_full / mean_inc, 3),
        "exports_grown": version_stats["exports_grown"],
        "marginals_delta": version_stats["marginals_delta"],
        "samples_lazy_rebuilt": version_stats["samples_lazy_rebuilt"],
        "identical_first_pick_vectors": vectors_identical,
        "identical_sample_sets": samples_identical,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def write_record(record: dict) -> None:
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")


def check_record(record: dict) -> None:
    n_batches = record["workload"]["batches"]
    assert record["identical_first_pick_vectors"], (
        "incremental first-pick vectors diverged from the cold build"
    )
    assert record["identical_sample_sets"], (
        "incrementally maintained sample sets diverged from the cold build"
    )
    assert record["exports_grown"] == n_batches, (
        f"only {record['exports_grown']}/{n_batches} appends grew the "
        "export in place"
    )
    assert record["marginals_delta"] == n_batches, (
        f"only {record['marginals_delta']}/{n_batches} appends took the "
        "marginal delta path"
    )
    mean_inc = record["incremental_append"]["mean_seconds"]
    mean_full = record["full_reregister"]["mean_seconds"]
    assert mean_inc < mean_full, (
        f"incremental append ({mean_inc * 1000:.2f} ms/batch) did not beat "
        f"full re-registration ({mean_full * 1000:.2f} ms/batch)"
    )


@pytest.mark.smoke
def test_append_tables_bench():
    """Smoke: small base table, short append schedule."""
    record = run_benchmark(SMOKE_BASE_ROWS, SMOKE_BATCH_ROWS, SMOKE_BATCHES)
    write_record(record)
    print()
    print(
        f"BX append {record['workload']['batch_rows']} rows onto "
        f"{record['workload']['base_rows']}: incremental "
        f"{record['incremental_append']['mean_seconds'] * 1000:.2f} ms/batch "
        f"vs re-register "
        f"{record['full_reregister']['mean_seconds'] * 1000:.2f} ms/batch "
        f"({record['speedup']}x)"
    )
    check_record(record)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller base table and append schedule (fast CI smoke run)",
    )
    args = parser.parse_args()
    record = run_benchmark(
        SMOKE_BASE_ROWS if args.smoke else BASE_ROWS,
        SMOKE_BATCH_ROWS if args.smoke else BATCH_ROWS,
        SMOKE_BATCHES if args.smoke else N_BATCHES,
    )
    write_record(record)
    print(json.dumps(record, indent=2))
    check_record(record)
    print(f"\nperf record written to {RECORD_PATH}")


if __name__ == "__main__":
    main()
