"""F3: Figure 3 — expanding a Figure 1 rule (Marketing).

The expansion of the (Female, >10 years) rule into more specific
sub-population rules.
"""

from __future__ import annotations

from repro.core import Rule, SizeWeight, rule_drilldown
from repro.experiments import run_fig3_rule_expansion


def test_fig3_rule_expansion(benchmark, marketing7):
    parent = Rule.from_named(marketing7, Sex="Female", TimeInBayArea=">10 years")
    wf = SizeWeight()
    result = benchmark(lambda: rule_drilldown(marketing7, parent, wf, 4, 5.0))
    assert result.rules
    for rule in result.rules:
        assert parent.is_strict_subrule_of(rule)


def test_fig3_transcript(benchmark):
    result = benchmark(run_fig3_rule_expansion)
    print()
    print(result.name)
    print(result.text)
